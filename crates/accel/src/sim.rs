//! The simulator driver: maps layer workloads onto the PE array, applies the
//! paper's synchronisation rules, and accounts cycles and energy.

use crate::config::AccelConfig;
use crate::energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use crate::engine::{run_pe, PeRun};
use crate::workload::{LayerWorkload, NetworkWorkload};
use serde::{Deserialize, Serialize};

/// Simulation result for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Cycles to process all images of this layer.
    pub cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// Lane-cycles lost to data-gated lanes waiting within their group.
    pub idle_lane_cycles: u64,
    /// Event counts.
    pub events: EnergyEvents,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Whether activations spilled to DRAM (paper: VGGNet's deeper layers).
    pub spilled: bool,
}

impl LayerReport {
    /// MAC-array utilisation: executed MACs over peak MAC-cycles.
    pub fn utilization(&self, cfg: &AccelConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * cfg.total_macs() as f64)
    }
}

/// Simulation result for a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Configuration simulated.
    pub config: AccelConfig,
    /// Total cycles.
    pub cycles: u64,
    /// Total energy.
    pub energy: EnergyBreakdown,
    /// Total event counts.
    pub events: EnergyEvents,
    /// Per-layer reports.
    pub per_layer: Vec<LayerReport>,
}

impl SimReport {
    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 * self.config.cycle_seconds()
    }

    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Speedup of `self` relative to `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Energy reduction of `self` relative to `baseline`.
    pub fn energy_reduction_over(&self, baseline: &SimReport) -> f64 {
        baseline.total_pj() / self.total_pj().max(f64::MIN_POSITIVE)
    }

    /// Overall MAC-array utilisation.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.events.macs as f64 / (self.cycles as f64 * self.config.total_macs() as f64)
    }
}

/// Splits `0..n` into `parts` contiguous near-equal ranges (empty ranges for
/// `parts > n`).
fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    (0..parts)
        .map(|p| (p * n / parts)..((p + 1) * n / parts))
        .collect()
}

/// Simulates one layer on the array; `is_first`/`is_last` carry the DRAM
/// boundary knowledge.
///
/// Mapping: the layer's work is decomposed into `(kernel, window-chunk)`
/// units — kernels across the array's vertical dimension, window chunks
/// across the horizontal dimension, with enough chunks per kernel that every
/// PE receives work even for narrow layers. Units are dealt round-robin to
/// PEs; each unit pays a weight/index buffer fill (the replication cost of
/// broadcasting a kernel to multiple PEs). PEs run independently and meet at
/// a barrier per image — the paper's horizontal-group synchronisation.
/// Permutation handing lanes spatially-adjacent 2×2 window tiles (the
/// paper's "adjacent convolution windows"): early-terminating windows
/// cluster spatially (Figure 2), so tiled lane groups straggle less than
/// row-major ones.
fn tile_order(h: usize, w: usize) -> Vec<u32> {
    let mut order = Vec::with_capacity(h * w);
    for ty in (0..h).step_by(2) {
        for tx in (0..w).step_by(2) {
            for dy in 0..2usize.min(h - ty) {
                for dx in 0..2usize.min(w - tx) {
                    order.push(snapea_tensor::num::idx_u32((ty + dy) * w + (tx + dx)));
                }
            }
        }
    }
    order
}

/// One dispatched work unit: a `(kernel, image, window-chunk)` triple placed
/// on a PE, with its timing. The same iteration drives both the simulator
/// totals and the event trace ([`crate::trace`]), so they cannot diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitDispatch {
    /// Kernel (output channel) index.
    pub kernel: usize,
    /// Image index within the batch.
    pub image: usize,
    /// Half-open window range (in the layer's tile order).
    pub window_range: (usize, usize),
    /// PE the unit was dispatched to.
    pub pe: usize,
    /// PE-local start cycle of the unit.
    pub start_cycle: u64,
    /// Weight/index buffer fill cycles paid before this unit (0 when the
    /// kernel was already resident on the PE).
    pub fill_cycles: u64,
    /// Compute (weight broadcast) cycles.
    pub busy_cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// Lane-cycles idled by data-gated lanes.
    pub idle_lane_cycles: u64,
}

/// Replays the layer mapping, invoking `visit` for every dispatched unit, and
/// returns `(aggregate PeRun, layer cycles)`. This is the single source of
/// truth for the mapping policy: least-loaded-PE dispatch of kernel-major
/// units, resident weights per (PE, kernel), 2×2 window tiles per lane group,
/// and a synchronisation barrier at the layer boundary (paper §V).
// lint:allow(P2) permuted/ops/loaded indices all derive from the same profile dimensions and pe_count
pub fn map_layer(
    cfg: &AccelConfig,
    layer: &LayerWorkload,
    mut visit: impl FnMut(&UnitDispatch),
) -> (PeRun, u64) {
    let p = &layer.profile;
    let (images, kernels, windows, window_len) =
        (p.images(), p.kernels(), p.windows(), p.window_len());
    let pe_count = cfg.pe_count();
    let (out_h, out_w) = layer.spatial;
    let window_order: Vec<u32> = if out_h * out_w == windows && out_w > 1 {
        tile_order(out_h, out_w)
    } else {
        (0..snapea_tensor::num::idx_u32(windows)).collect()
    };
    // Enough window chunks that kernels × chunks covers the array, but no
    // chunk smaller than one lane group.
    let max_chunks = windows.div_ceil(cfg.lanes_per_pe).max(1);
    let chunks_per_kernel = pe_count.div_ceil(kernels.max(1)).clamp(1, max_chunks);
    let window_chunks = split_ranges(windows, chunks_per_kernel);

    let mut total = PeRun::default();
    // Min-heap of (load, pe): each (kernel, image, window-chunk) unit goes
    // to the currently least-loaded PE — the controller dispatches the next
    // unit to whichever PE frees up first. Units are dealt kernel-major so a
    // kernel's weights/indices are filled into each PE's buffers at most
    // once per layer (they stay resident while the batch streams through).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut permuted: Vec<u32> = vec![0; windows];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..pe_count).map(|pe| Reverse((0u64, pe))).collect();
    let mut loaded = vec![false; pe_count];
    for k in 0..kernels {
        loaded.iter_mut().for_each(|l| *l = false);
        for img in 0..images {
            let ops = p.kernel_ops(img, k);
            for (dst, &src) in permuted.iter_mut().zip(&window_order) {
                *dst = ops[src as usize];
            }
            for wc in &window_chunks {
                if wc.is_empty() {
                    continue;
                }
                let slice = &permuted[wc.clone()];
                // Buffer fills are accounted per (PE, kernel) below.
                let run = run_pe(&[slice], cfg.lanes_per_pe, 0);
                // lint:allow(P1) every pop is paired with a push below, so the heap always holds pe_count entries
                let Reverse((load, pe)) = heap.pop().expect("heap holds all PEs");
                let fill = if loaded[pe] {
                    0
                } else {
                    loaded[pe] = true;
                    total.load_cycles += window_len as u64;
                    window_len as u64
                };
                visit(&UnitDispatch {
                    kernel: k,
                    image: img,
                    window_range: (wc.start, wc.end),
                    pe,
                    start_cycle: load,
                    fill_cycles: fill,
                    busy_cycles: run.busy_cycles,
                    macs: run.macs,
                    idle_lane_cycles: run.idle_lane_cycles,
                });
                heap.push(Reverse((load + fill + run.cycles(), pe)));
                total.merge(&run);
            }
        }
    }
    // Synchronisation barrier at the layer boundary: the next layer's input
    // portions are only broadcast once every PE has drained (paper §V,
    // Organisation of PEs).
    let cycles = heap
        .into_iter()
        .map(|Reverse((load, _))| load)
        .max()
        .unwrap_or(0);
    (total, cycles)
}

fn simulate_layer(
    cfg: &AccelConfig,
    model: &EnergyModel,
    layer: &LayerWorkload,
    is_first: bool,
    is_last: bool,
) -> LayerReport {
    let p = &layer.profile;
    let (images, kernels, windows) = (p.images(), p.kernels(), p.windows());
    // With a sink installed, accumulate per-PE activity inside the same
    // mapping pass that produces the simulator totals (one iteration, so the
    // emitted utilization/imbalance cannot diverge from the report).
    let obs_on = snapea_obs::enabled();
    let mut per_pe: Vec<crate::trace::PeActivity> = if obs_on {
        vec![crate::trace::PeActivity::default(); cfg.pe_count()]
    } else {
        Vec::new()
    };
    let (total, cycles) = map_layer(cfg, layer, |u| {
        if obs_on {
            let pe = &mut per_pe[u.pe];
            pe.units += 1;
            pe.fill_cycles += u.fill_cycles;
            pe.busy_cycles += u.busy_cycles;
            pe.macs += u.macs;
            pe.idle_lane_cycles += u.idle_lane_cycles;
        }
    });

    // Data movement.
    let has_index = cfg.index_buffer_bytes > 0;
    let outputs = (images * kernels * windows) as u64;
    // One weight word per busy cycle per PE, amortised by the dataflow's
    // cross-PE weight forwarding (row-stationary reuse on the baseline).
    let weight_fetches = total.busy_cycles / cfg.weight_reuse.max(1) as u64;
    let fills = total.load_cycles;
    // Input operands come from the on-chip buffer, amortised by the
    // dataflow's register-level reuse factor (row-stationary reuses more
    // than SnaPEA's index-directed gather).
    let input_reads = total.macs / cfg.input_reuse.max(1) as u64;
    // Array control overhead: every lane clocks its control/registers each
    // layer cycle regardless of data gating (only the multiplier and
    // accumulator are gated, per the paper), so control scales with cycles,
    // not with executed MACs.
    let control = cycles * cfg.total_macs() as u64;
    let footprint_bytes = (layer.input_words + layer.output_words) * 2; // 16-bit words
    let spilled = footprint_bytes as usize > cfg.io_buffer_bytes;

    let mut dram_words = layer.weight_words;
    if has_index {
        // The index table travels with the weights at half width.
        dram_words += layer.weight_words / 2;
    }
    if is_first || spilled {
        dram_words += layer.input_words * images as u64;
    }
    if is_last || spilled {
        dram_words += layer.output_words * images as u64;
    }

    let events = EnergyEvents {
        macs: total.macs,
        // Operand/accumulator registers per MAC, ungated lane registers
        // during straggler waits, local weight-buffer fetches (0.5 KB SRAM —
        // register class), and per-cycle lane control.
        register_accesses: 3 * (total.macs + total.idle_lane_cycles) + weight_fetches + control,
        buffer_accesses: fills + input_reads + outputs,
        index_accesses: if has_index { weight_fetches + fills } else { 0 },
        inter_pe_words: layer.input_words * images as u64 + layer.weight_words,
        dram_words,
    };
    let energy = EnergyBreakdown::from_events(model, &events);

    let report = LayerReport {
        name: layer.name.clone(),
        cycles,
        macs: total.macs,
        idle_lane_cycles: total.idle_lane_cycles,
        events,
        energy,
        spilled,
    };
    snapea_obs::counter("sim/layers").inc();
    snapea_obs::counter("sim/cycles").add(cycles);
    snapea_obs::counter("sim/macs").add(total.macs);
    if obs_on {
        // Imbalance as in `LayerTrace::imbalance`: mean end-of-layer barrier
        // wait as a fraction of the layer's cycles.
        let imbalance = if cycles == 0 || per_pe.is_empty() {
            0.0
        } else {
            let waits: u64 = per_pe.iter().map(|pe| cycles - pe.finish_cycle()).sum();
            waits as f64 / (cycles as f64 * per_pe.len() as f64)
        };
        let busiest = per_pe.iter().map(|pe| pe.finish_cycle()).max().unwrap_or(0);
        let idlest = per_pe.iter().map(|pe| pe.finish_cycle()).min().unwrap_or(0);
        snapea_obs::event!(
            "sim/layer",
            layer = report.name.clone(),
            cycles = cycles,
            macs = total.macs,
            utilization = report.utilization(cfg),
            imbalance = imbalance,
            idle_lane_cycles = total.idle_lane_cycles,
            pes = per_pe.len() as u64,
            busiest_pe_cycles = busiest,
            idlest_pe_cycles = idlest,
            energy_pj = report.energy.total_pj(),
            spilled = report.spilled,
        );
    }
    report
}

/// Simulates a whole network on the configured accelerator.
pub fn simulate(cfg: &AccelConfig, model: &EnergyModel, net: &NetworkWorkload) -> SimReport {
    let _span = snapea_obs::span!("sim/simulate", net.name.clone());
    let n = net.layers.len();
    let mut per_layer = Vec::with_capacity(n);
    let mut cycles = 0u64;
    let mut energy = EnergyBreakdown::default();
    let mut events = EnergyEvents::default();
    for (i, layer) in net.layers.iter().enumerate() {
        let r = simulate_layer(cfg, model, layer, i == 0, i + 1 == n);
        cycles += r.cycles;
        energy.merge(&r.energy);
        events.merge(&r.events);
        per_layer.push(r);
    }
    let report = SimReport {
        config: *cfg,
        cycles,
        energy,
        events,
        per_layer,
    };
    snapea_obs::event!(
        "sim/network",
        network = net.name.clone(),
        layers = n as u64,
        cycles = cycles,
        macs = report.events.macs,
        utilization = report.utilization(),
        energy_pj = report.total_pj(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapea::exec::LayerProfile;

    fn synthetic_layer(
        name: &str,
        images: usize,
        kernels: usize,
        windows: usize,
        window_len: usize,
        op_fn: impl Fn(usize, usize, usize) -> u32,
    ) -> LayerWorkload {
        let mut ops = Vec::with_capacity(images * kernels * windows);
        for i in 0..images {
            for k in 0..kernels {
                for w in 0..windows {
                    ops.push(op_fn(i, k, w).min(window_len as u32));
                }
            }
        }
        let profile = LayerProfile::from_ops(images, kernels, windows, window_len, ops);
        LayerWorkload::new(name, profile, (windows * 4) as u64)
    }

    fn dense_net(window_len: usize) -> NetworkWorkload {
        NetworkWorkload {
            name: "dense".into(),
            layers: vec![synthetic_layer("l0", 1, 16, 64, window_len, |_, _, _| {
                window_len as u32
            })],
        }
    }

    #[test]
    fn early_termination_reduces_cycles_vs_dense() {
        let wl = 36;
        let sparse = NetworkWorkload {
            name: "sparse".into(),
            layers: vec![synthetic_layer("l0", 1, 16, 64, wl, |_, k, w| {
                ((k + w) % wl) as u32 + 1
            })],
        };
        let dense = sparse.to_dense();
        let cfg = AccelConfig::snapea();
        let m = EnergyModel::default();
        let rs = simulate(&cfg, &m, &sparse);
        let rd = simulate(&cfg, &m, &dense);
        assert!(rs.cycles < rd.cycles);
        assert!(rs.total_pj() < rd.total_pj());
        assert!(rs.speedup_over(&rd) > 1.0); // sparse is the faster one
        assert!(rs.energy_reduction_over(&rd) > 1.0);
    }

    #[test]
    fn report_macs_match_workload_ops() {
        let net = dense_net(27);
        let cfg = AccelConfig::snapea();
        let r = simulate(&cfg, &EnergyModel::default(), &net);
        assert_eq!(r.events.macs, net.total_ops());
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }

    #[test]
    fn eyeriss_has_no_index_traffic() {
        let net = dense_net(27);
        let m = EnergyModel::default();
        let re = simulate(&AccelConfig::eyeriss(), &m, &net);
        let rs = simulate(&AccelConfig::snapea(), &m, &net);
        assert_eq!(re.events.index_accesses, 0);
        assert!(rs.events.index_accesses > 0);
        assert_eq!(re.energy.index_pj, 0.0);
    }

    #[test]
    fn equal_peak_throughput_on_dense_workload() {
        // On a dense workload with enough parallelism, SnaPEA and the
        // baseline should be within a small factor of each other (same 256
        // MACs) — SnaPEA pays only buffer-fill replication.
        let net = dense_net(36);
        let m = EnergyModel::default();
        let re = simulate(&AccelConfig::eyeriss(), &m, &net);
        let rs = simulate(&AccelConfig::snapea(), &m, &net);
        let ratio = rs.cycles as f64 / re.cycles as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "dense cycle ratio {ratio} too far from parity"
        );
    }

    #[test]
    fn spill_detection_uses_buffer_capacity() {
        // Two layers so the middle activation can either stay on chip or
        // spill (first-layer input and last-layer output always hit DRAM).
        let mut cfg = AccelConfig::snapea();
        let net = NetworkWorkload {
            name: "n".into(),
            layers: vec![
                synthetic_layer("a", 1, 8, 64, 9, |_, _, _| 9),
                synthetic_layer("b", 1, 8, 64, 9, |_, _, _| 9),
            ],
        };
        let m = EnergyModel::default();
        let roomy = simulate(&cfg, &m, &net);
        assert!(!roomy.per_layer[0].spilled);
        cfg.io_buffer_bytes = 16; // force a spill
        let tight = simulate(&cfg, &m, &net);
        assert!(tight.per_layer[0].spilled && tight.per_layer[1].spilled);
        assert!(tight.events.dram_words > roomy.events.dram_words);
        assert!(tight.total_pj() > roomy.total_pj());
    }

    #[test]
    fn lane_scaling_shows_the_figure12_ushape_on_variable_ops() {
        // Highly variable op counts (early termination) → wider lane groups
        // suffer stragglers; narrower lanes suffer weight-fill replication.
        let wl = 64;
        let layer = synthetic_layer("var", 2, 16, 256, wl, |i, k, w| {
            (((k * 31 + w * 17 + i * 7) % wl) as u32).max(1)
        });
        let net = NetworkWorkload {
            name: "n".into(),
            layers: vec![layer],
        };
        let m = EnergyModel::default();
        let cycles =
            |num, den| simulate(&AccelConfig::snapea_lanes_scaled(num, den), &m, &net).cycles;
        let default = cycles(1, 1);
        let double = cycles(2, 1);
        let quad = cycles(4, 1);
        assert!(
            double > default,
            "2x lanes should be slower: {double} vs {default}"
        );
        assert!(
            quad >= double,
            "4x lanes should not beat 2x: {quad} vs {double}"
        );
    }

    #[test]
    fn per_layer_reports_sum_to_totals() {
        let net = NetworkWorkload {
            name: "two".into(),
            layers: vec![
                synthetic_layer("a", 1, 8, 32, 18, |_, k, _| (k as u32 % 18) + 1),
                synthetic_layer("b", 1, 4, 16, 9, |_, _, w| (w as u32 % 9) + 1),
            ],
        };
        let r = simulate(&AccelConfig::snapea(), &EnergyModel::default(), &net);
        assert_eq!(r.cycles, r.per_layer.iter().map(|l| l.cycles).sum::<u64>());
        let esum: f64 = r.per_layer.iter().map(|l| l.energy.total_pj()).sum();
        assert!((r.total_pj() - esum).abs() < 1e-6);
    }
}
