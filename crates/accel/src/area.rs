//! Area model — the paper's Table II breakdown (TSMC 45 nm synthesis
//! results, transcribed as constants; see DESIGN.md §1).

use crate::config::AccelConfig;
use serde::{Deserialize, Serialize};

/// One row of the area table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaItem {
    /// Component name.
    pub name: String,
    /// Size description (capacity or count).
    pub size: String,
    /// Area in mm².
    pub area_mm2: f64,
}

/// Area breakdown of an accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Per-component rows.
    pub items: Vec<AreaItem>,
    /// Total area in mm².
    pub total_mm2: f64,
}

/// Per-PE component areas at 45 nm from the paper's Table II (mm²).
mod unit {
    /// Four compute lanes (MAC units + accumulators).
    pub const COMPUTE_LANES_4: f64 = 0.012;
    /// One single-lane PE of the baseline (MAC + partial-sum/input regs).
    pub const EYERISS_PE: f64 = 0.003 + 0.002 + 0.001;
    /// 0.5 KB weight buffer.
    pub const WEIGHT_BUF: f64 = 0.014;
    /// 0.5 KB index buffer.
    pub const INDEX_BUF: f64 = 0.007;
    /// 20 KB input/output RAM.
    pub const IO_RAM_20K: f64 = 0.250;
    /// Four predictive activation units.
    pub const PAU_4: f64 = 0.008;
    /// 1.25 MB global buffer (baseline).
    pub const GLOBAL_BUF: f64 = 12.9;
}

/// Computes the area of a configuration, scaling the Table II per-PE
/// components by the PE/lane counts.
pub fn area_of(cfg: &AccelConfig) -> AreaBreakdown {
    let pes = cfg.pe_count() as f64;
    let mut items = Vec::new();
    let lane_scale = cfg.lanes_per_pe as f64 / 4.0;

    if cfg.lanes_per_pe > 1 || cfg.has_pau {
        // SnaPEA-style PE.
        let pe_area = unit::COMPUTE_LANES_4 * lane_scale
            + unit::WEIGHT_BUF
            + if cfg.index_buffer_bytes > 0 {
                unit::INDEX_BUF
            } else {
                0.0
            }
            + unit::IO_RAM_20K * (cfg.io_buffer_bytes as f64 / pes / (20.0 * 1024.0))
            + if cfg.has_pau {
                unit::PAU_4 * lane_scale
            } else {
                0.0
            };
        items.push(AreaItem {
            name: format!("{} PEs ({} lanes each)", cfg.pe_count(), cfg.lanes_per_pe),
            size: format!("{} MACs", cfg.total_macs()),
            area_mm2: pe_area * pes,
        });
    } else {
        items.push(AreaItem {
            name: format!("{} PEs (1 lane each)", cfg.pe_count()),
            size: format!("{} MACs", cfg.total_macs()),
            area_mm2: (unit::EYERISS_PE + unit::WEIGHT_BUF) * pes,
        });
        items.push(AreaItem {
            name: "Global buffer".to_string(),
            size: "1.25 MB".to_string(),
            area_mm2: unit::GLOBAL_BUF * (cfg.io_buffer_bytes as f64 / 1_310_720.0),
        });
    }

    let total_mm2 = items.iter().map(|i| i.area_mm2).sum();
    AreaBreakdown { items, total_mm2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapea_area_close_to_paper_total() {
        // Paper: 18.6 mm² for the 64-PE SnaPEA configuration.
        let a = area_of(&AccelConfig::snapea());
        assert!(
            (a.total_mm2 - 18.6).abs() < 0.5,
            "SnaPEA area {} deviates from the paper's 18.6 mm²",
            a.total_mm2
        );
    }

    #[test]
    fn eyeriss_area_close_to_paper_total() {
        // Paper: 17.8 mm² for the 256-PE EYERISS configuration.
        let a = area_of(&AccelConfig::eyeriss());
        assert!(
            (a.total_mm2 - 17.8).abs() < 0.8,
            "EYERISS area {} deviates from the paper's 17.8 mm²",
            a.total_mm2
        );
    }

    #[test]
    fn snapea_overhead_is_a_few_percent() {
        // Paper: "≈4.5% more area" for SnaPEA vs EYERISS.
        let s = area_of(&AccelConfig::snapea()).total_mm2;
        let e = area_of(&AccelConfig::eyeriss()).total_mm2;
        let overhead = s / e - 1.0;
        assert!(
            overhead > 0.0 && overhead < 0.10,
            "area overhead {overhead} outside the expected few-percent band"
        );
    }
}
