//! PE timing engine.
//!
//! [`run_pe`] is the analytic model used by the simulator; [`cycle_exact_pe`]
//! is a literal cycle-stepped simulation of the same microarchitecture, kept
//! as the ground truth the analytic model is tested against (DESIGN.md §4,
//! "two simulator fidelities").
//!
//! Microarchitecture (paper §V): each PE processes one kernel at a time. Its
//! weight/index buffers are first filled (one word per cycle). The lanes then
//! take consecutive convolution windows; every cycle the controller
//! broadcasts one weight (and one input index) to all lanes. A lane whose
//! window has terminated (PAU) is data-gated but the broadcast continues
//! until every lane of the group is done — the idle-lane phenomenon the
//! paper's Figure 12 studies. When all lanes finish, the next group of
//! windows starts.

/// Timing result of one PE's share of one layer (one image).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeRun {
    /// Cycles spent broadcasting weights (compute).
    pub busy_cycles: u64,
    /// Cycles spent filling the weight/index buffers per kernel.
    pub load_cycles: u64,
    /// Lane-cycles wasted by data-gated (terminated) lanes waiting for the
    /// stragglers of their group.
    pub idle_lane_cycles: u64,
    /// MACs actually executed.
    pub macs: u64,
}

impl PeRun {
    /// Total cycles (load + busy).
    pub fn cycles(&self) -> u64 {
        self.busy_cycles + self.load_cycles
    }

    /// Accumulates another run.
    pub fn merge(&mut self, other: &PeRun) {
        self.busy_cycles += other.busy_cycles;
        self.load_cycles += other.load_cycles;
        self.idle_lane_cycles += other.idle_lane_cycles;
        self.macs += other.macs;
    }
}

/// Analytic PE timing: `kernel_window_ops[k]` holds the op counts of the
/// windows assigned to this PE for kernel `k`; the weight buffer is refilled
/// (`window_len` cycles) per kernel.
pub fn run_pe(kernel_window_ops: &[&[u32]], lanes: usize, window_len: usize) -> PeRun {
    assert!(lanes >= 1, "at least one lane");
    let mut run = PeRun::default();
    for ops in kernel_window_ops {
        if ops.is_empty() {
            continue;
        }
        run.load_cycles += window_len as u64;
        for group in ops.chunks(lanes) {
            let max = group.iter().map(|&o| u64::from(o)).max().unwrap_or(0);
            run.busy_cycles += max;
            for &o in group {
                run.macs += u64::from(o);
                run.idle_lane_cycles += max - u64::from(o);
            }
            // Lanes beyond the group remainder are idle for the whole group.
            run.idle_lane_cycles += max * (lanes - group.len()) as u64;
        }
    }
    run
}

/// Cycle-stepped reference implementation of the same PE.
pub fn cycle_exact_pe(kernel_window_ops: &[&[u32]], lanes: usize, window_len: usize) -> PeRun {
    assert!(lanes >= 1, "at least one lane");
    let mut run = PeRun::default();
    for ops in kernel_window_ops {
        if ops.is_empty() {
            continue;
        }
        // Fill weight + index buffers, one word per cycle.
        for _ in 0..window_len {
            run.load_cycles += 1;
        }
        for group in ops.chunks(lanes) {
            // remaining[i] = MACs left for lane i's window.
            let mut remaining: Vec<u32> = group.to_vec();
            loop {
                if remaining.iter().all(|&r| r == 0) {
                    break;
                }
                // One broadcast cycle: every lane holding work consumes one
                // MAC; done lanes are data-gated (idle).
                run.busy_cycles += 1;
                let mut active = 0usize;
                for r in remaining.iter_mut() {
                    if *r > 0 {
                        *r -= 1;
                        active += 1;
                        run.macs += 1;
                    }
                }
                run.idle_lane_cycles += (lanes - active) as u64;
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_equals_cycle_exact() {
        let cases: Vec<(Vec<Vec<u32>>, usize, usize)> = vec![
            (vec![vec![3, 1, 4, 1, 5]], 4, 9),
            (vec![vec![0, 0, 0, 0]], 4, 5),
            (vec![vec![7]], 1, 7),
            (vec![vec![2, 9, 2], vec![1, 1, 1, 1, 1, 1]], 2, 9),
            (vec![vec![5; 13]], 8, 5),
            (vec![], 4, 3),
        ];
        for (ops, lanes, wl) in cases {
            let slices: Vec<&[u32]> = ops.iter().map(Vec::as_slice).collect();
            let a = run_pe(&slices, lanes, wl);
            let c = cycle_exact_pe(&slices, lanes, wl);
            assert_eq!(a, c, "ops={ops:?} lanes={lanes}");
        }
    }

    #[test]
    fn straggler_dominates_group() {
        let ops = [[1u32, 1, 1, 10]];
        let slices: Vec<&[u32]> = ops.iter().map(|o| o.as_slice()).collect();
        let r = run_pe(&slices, 4, 10);
        assert_eq!(r.busy_cycles, 10);
        assert_eq!(r.macs, 13);
        assert_eq!(r.idle_lane_cycles, 27);
    }

    #[test]
    fn dense_ops_have_no_idle_lanes_in_full_groups() {
        let ops = [[6u32; 8]];
        let slices: Vec<&[u32]> = ops.iter().map(|o| o.as_slice()).collect();
        let r = run_pe(&slices, 4, 6);
        assert_eq!(r.busy_cycles, 12);
        assert_eq!(r.idle_lane_cycles, 0);
        assert_eq!(r.macs, 48);
        assert_eq!(r.load_cycles, 6);
    }

    #[test]
    fn more_lanes_is_never_faster_for_fixed_pe() {
        // With a fixed set of windows on ONE PE, more lanes reduce busy
        // cycles but the reduction saturates as stragglers dominate.
        let ops: Vec<u32> = (1..=16).collect();
        let wrapped = [ops.clone()];
        let slices: Vec<&[u32]> = wrapped.iter().map(Vec::as_slice).collect();
        let mut prev = u64::MAX;
        for lanes in [1usize, 2, 4, 8, 16] {
            let r = run_pe(&slices, lanes, 16);
            assert!(r.busy_cycles <= prev);
            prev = r.busy_cycles;
        }
        // But per-lane efficiency degrades: idle cycles grow with lanes.
        let narrow = run_pe(&slices, 2, 16).idle_lane_cycles;
        let wide = run_pe(&slices, 16, 16).idle_lane_cycles;
        assert!(wide > narrow);
    }

    #[test]
    fn partial_group_remainder_counts_idle() {
        // 5 windows on 4 lanes: second group has 3 idle lanes.
        let ops = [[2u32, 2, 2, 2, 2]];
        let slices: Vec<&[u32]> = ops.iter().map(|o| o.as_slice()).collect();
        let r = run_pe(&slices, 4, 2);
        assert_eq!(r.busy_cycles, 4);
        assert_eq!(r.idle_lane_cycles, 2 * 3);
    }
}
