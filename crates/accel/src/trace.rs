//! Per-component event log (the paper §VI-A: "the simulator … generates an
//! event log for each hardware component").
//!
//! A [`LayerTrace`] records every dispatched work unit of a layer —
//! which PE it ran on, when it started in that PE's local timeline, how many
//! cycles it filled buffers / broadcast weights / idled lanes — driven by the
//! *same* mapping iteration as the simulator ([`crate::sim::map_layer`]), so
//! trace totals and report totals cannot diverge (asserted by tests, per
//! layer and at network scope). [`LayerTrace::emit_events`] exports the
//! per-PE utilization and imbalance through the obs sinks.

use crate::config::AccelConfig;
use crate::sim::{map_layer, UnitDispatch};
use crate::workload::{LayerWorkload, NetworkWorkload};
use serde::{Deserialize, Serialize};

/// Per-PE activity summary within one layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeActivity {
    /// Units dispatched to this PE.
    pub units: usize,
    /// Buffer-fill cycles.
    pub fill_cycles: u64,
    /// Weight-broadcast (compute) cycles.
    pub busy_cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// Data-gated lane-cycles.
    pub idle_lane_cycles: u64,
}

impl PeActivity {
    /// This PE's local finish time.
    pub fn finish_cycle(&self) -> u64 {
        self.fill_cycles + self.busy_cycles
    }
}

/// The event log of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Every dispatched unit, in dispatch order.
    pub units: Vec<UnitDispatch>,
    /// Per-PE summaries.
    pub per_pe: Vec<PeActivity>,
    /// Layer cycles (max PE finish time — the synchronisation barrier).
    pub cycles: u64,
}

impl LayerTrace {
    /// Cycles each PE waits at the end-of-layer barrier.
    pub fn barrier_wait(&self, pe: usize) -> u64 {
        self.cycles - self.per_pe[pe].finish_cycle()
    }

    /// Load imbalance: mean barrier wait over all PEs, as a fraction of the
    /// layer's cycles.
    pub fn imbalance(&self) -> f64 {
        if self.cycles == 0 || self.per_pe.is_empty() {
            return 0.0;
        }
        let waits: u64 = (0..self.per_pe.len()).map(|pe| self.barrier_wait(pe)).sum();
        waits as f64 / (self.cycles as f64 * self.per_pe.len() as f64)
    }

    /// Exports the trace through the obs sinks: one `sim/trace` summary for
    /// the layer plus one `sim/trace/pe` event per PE (busy/fill/idle cycle
    /// split, per-PE utilization, barrier wait). No-op without a sink.
    pub fn emit_events(&self) {
        if !snapea_obs::enabled() {
            return;
        }
        snapea_obs::event!(
            "sim/trace",
            layer = self.name.clone(),
            cycles = self.cycles,
            units = self.units.len() as u64,
            pes = self.per_pe.len() as u64,
            imbalance = self.imbalance(),
        );
        for (pe, a) in self.per_pe.iter().enumerate() {
            let utilization = if self.cycles == 0 {
                0.0
            } else {
                a.busy_cycles as f64 / self.cycles as f64
            };
            snapea_obs::event!(
                "sim/trace/pe",
                layer = self.name.clone(),
                pe = pe as u64,
                units = a.units as u64,
                fill_cycles = a.fill_cycles,
                busy_cycles = a.busy_cycles,
                macs = a.macs,
                idle_lane_cycles = a.idle_lane_cycles,
                utilization = utilization,
                barrier_wait = self.barrier_wait(pe),
            );
        }
    }

    /// Exports this layer's cycle-accurate PE timeline through the obs sinks
    /// as `sim/pe/phase` events: one `fill` slice per weight/index buffer
    /// load, one `compute` slice per dispatched unit, and one `stall` slice
    /// per PE waiting at the end-of-layer barrier. `start_cycle` values are
    /// offset by `base_cycle` so consecutive layers share one virtual clock
    /// (layer boundaries are synchronisation barriers). Timestamps are pure
    /// virtual time — no wall clock — so the timeline is a deterministic
    /// function of the workload. Returns the next layer's base cycle.
    pub fn emit_pe_phases(&self, base_cycle: u64) -> u64 {
        if !snapea_obs::enabled() {
            return base_cycle + self.cycles;
        }
        for u in &self.units {
            if u.fill_cycles > 0 {
                snapea_obs::event!(
                    "sim/pe/phase",
                    layer = self.name.clone(),
                    pe = u.pe as u64,
                    phase = "fill",
                    start_cycle = base_cycle + u.start_cycle,
                    cycles = u.fill_cycles,
                    kernel = u.kernel as u64,
                );
            }
            if u.busy_cycles > 0 {
                snapea_obs::event!(
                    "sim/pe/phase",
                    layer = self.name.clone(),
                    pe = u.pe as u64,
                    phase = "compute",
                    start_cycle = base_cycle + u.start_cycle + u.fill_cycles,
                    cycles = u.busy_cycles,
                    kernel = u.kernel as u64,
                    image = u.image as u64,
                    macs = u.macs,
                );
            }
        }
        for (pe, a) in self.per_pe.iter().enumerate() {
            let wait = self.cycles - a.finish_cycle();
            if wait > 0 && a.units > 0 {
                snapea_obs::event!(
                    "sim/pe/phase",
                    layer = self.name.clone(),
                    pe = pe as u64,
                    phase = "stall",
                    start_cycle = base_cycle + a.finish_cycle(),
                    cycles = wait,
                );
            }
        }
        base_cycle + self.cycles
    }
}

/// Emits the cycle-accurate PE timeline of a whole network trace (see
/// [`LayerTrace::emit_pe_phases`]): layers are laid out back to back on one
/// shared virtual clock. Returns the network's total cycle count.
pub fn emit_pe_timeline(traces: &[LayerTrace]) -> u64 {
    let mut base = 0;
    for t in traces {
        base = t.emit_pe_phases(base);
    }
    base
}

/// Traces one layer's execution on `cfg`.
pub fn trace_layer(cfg: &AccelConfig, layer: &LayerWorkload) -> LayerTrace {
    let mut units = Vec::new();
    let mut per_pe = vec![PeActivity::default(); cfg.pe_count()];
    let (_, cycles) = map_layer(cfg, layer, |u| {
        let pe = &mut per_pe[u.pe];
        pe.units += 1;
        pe.fill_cycles += u.fill_cycles;
        pe.busy_cycles += u.busy_cycles;
        pe.macs += u.macs;
        pe.idle_lane_cycles += u.idle_lane_cycles;
        units.push(u.clone());
    });
    LayerTrace {
        name: layer.name.clone(),
        units,
        per_pe,
        cycles,
    }
}

/// Traces every layer of a network.
pub fn trace_network(cfg: &AccelConfig, net: &NetworkWorkload) -> Vec<LayerTrace> {
    net.layers.iter().map(|l| trace_layer(cfg, l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyModel;
    use crate::sim::simulate;
    use snapea::exec::LayerProfile;

    fn layer(images: usize, kernels: usize, windows: usize, wl: usize) -> LayerWorkload {
        let ops: Vec<u32> = (0..images * kernels * windows)
            .map(|i| ((i * 13) % wl) as u32 + 1)
            .collect();
        LayerWorkload::new(
            "t",
            LayerProfile::from_ops(images, kernels, windows, wl, ops),
            128,
        )
    }

    #[test]
    fn trace_totals_match_simulator_report() {
        let wl = layer(2, 8, 64, 36);
        let net = NetworkWorkload {
            name: "n".into(),
            layers: vec![wl.clone()],
        };
        let cfg = AccelConfig::snapea();
        let report = simulate(&cfg, &EnergyModel::default(), &net);
        let trace = trace_layer(&cfg, &wl);
        assert_eq!(trace.cycles, report.per_layer[0].cycles);
        let macs: u64 = trace.per_pe.iter().map(|p| p.macs).sum();
        assert_eq!(macs, report.per_layer[0].macs);
        let idle: u64 = trace.per_pe.iter().map(|p| p.idle_lane_cycles).sum();
        assert_eq!(idle, report.per_layer[0].idle_lane_cycles);
    }

    #[test]
    fn network_trace_totals_match_simulator_report() {
        // Network scope: heterogeneous layers, so any divergence between the
        // trace iteration and the simulator's own accounting would surface.
        let net = NetworkWorkload {
            name: "multi".into(),
            layers: vec![
                layer(2, 8, 64, 36),
                layer(1, 4, 48, 27),
                layer(3, 16, 16, 9),
            ],
        };
        let cfg = AccelConfig::snapea();
        let report = simulate(&cfg, &EnergyModel::default(), &net);
        let traces = trace_network(&cfg, &net);
        assert_eq!(traces.len(), report.per_layer.len());
        for (t, r) in traces.iter().zip(&report.per_layer) {
            assert_eq!(t.cycles, r.cycles, "layer {} cycles", r.name);
            let macs: u64 = t.per_pe.iter().map(|p| p.macs).sum();
            assert_eq!(macs, r.macs, "layer {} macs", r.name);
            let idle: u64 = t.per_pe.iter().map(|p| p.idle_lane_cycles).sum();
            assert_eq!(idle, r.idle_lane_cycles, "layer {} idle", r.name);
        }
        let trace_cycles: u64 = traces.iter().map(|t| t.cycles).sum();
        assert_eq!(trace_cycles, report.cycles);
        let trace_macs: u64 = traces
            .iter()
            .flat_map(|t| t.per_pe.iter().map(|p| p.macs))
            .sum();
        assert_eq!(trace_macs, report.events.macs);
    }

    #[test]
    fn units_cover_every_kernel_and_image() {
        let wl = layer(3, 5, 32, 27);
        let trace = trace_layer(&AccelConfig::snapea(), &wl);
        for k in 0..5 {
            for img in 0..3 {
                let covered: Vec<_> = trace
                    .units
                    .iter()
                    .filter(|u| u.kernel == k && u.image == img)
                    .collect();
                assert!(!covered.is_empty(), "kernel {k} image {img} unmapped");
                let total: usize = covered
                    .iter()
                    .map(|u| u.window_range.1 - u.window_range.0)
                    .sum();
                assert_eq!(total, 32, "window coverage for kernel {k}");
            }
        }
    }

    #[test]
    fn fills_charged_once_per_pe_and_kernel() {
        let wl = layer(4, 2, 64, 20);
        let trace = trace_layer(&AccelConfig::snapea(), &wl);
        // Each (pe, kernel) pair pays at most one fill.
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for u in &trace.units {
            if u.fill_cycles > 0 {
                assert!(
                    seen.insert((u.pe, u.kernel)),
                    "double fill on pe {} kernel {}",
                    u.pe,
                    u.kernel
                );
                assert_eq!(u.fill_cycles, 20);
            }
        }
    }

    #[test]
    fn barrier_and_imbalance_accounting() {
        let wl = layer(1, 16, 64, 30);
        let trace = trace_layer(&AccelConfig::snapea(), &wl);
        assert!(trace.cycles > 0);
        for pe in 0..trace.per_pe.len() {
            assert!(trace.per_pe[pe].finish_cycle() <= trace.cycles);
        }
        let imb = trace.imbalance();
        assert!((0.0..1.0).contains(&imb), "imbalance {imb}");
    }

    #[test]
    fn pe_timeline_events_are_cycle_accurate_and_deterministic() {
        use snapea_obs::Json;
        // Unique layer names so concurrent tests' events can be filtered out
        // (the sink list is process-global).
        let mk = |name: &str, seed: usize| {
            let ops: Vec<u32> = (0..2 * 4 * 32)
                .map(|i| ((i * seed) % 18) as u32 + 1)
                .collect();
            LayerWorkload::new(name, LayerProfile::from_ops(2, 4, 32, 18, ops), 64)
        };
        let net = NetworkWorkload {
            name: "pt".into(),
            layers: vec![mk("pt-layer-a", 13), mk("pt-layer-b", 7)],
        };
        let cfg = AccelConfig::snapea();
        let traces = trace_network(&cfg, &net);

        let capture = || {
            let mem = snapea_obs::MemorySink::new();
            snapea_obs::sink::install(Box::new(mem.clone()));
            let total = emit_pe_timeline(&traces);
            snapea_obs::sink::clear();
            let events: Vec<Json> = mem
                .events()
                .into_iter()
                .filter(|e| {
                    e.get("kind").and_then(Json::as_str) == Some("sim/pe/phase")
                        && e.get("layer")
                            .and_then(Json::as_str)
                            .is_some_and(|l| l.starts_with("pt-layer-"))
                })
                .collect();
            (total, events)
        };
        let (total, events) = capture();
        assert_eq!(
            total,
            traces.iter().map(|t| t.cycles).sum::<u64>(),
            "timeline spans the whole network"
        );
        assert!(!events.is_empty());

        // Per-layer compute cycles in the timeline equal the trace's busy
        // cycles, and every slice fits inside its layer's cycle window.
        let mut base = 0u64;
        for t in &traces {
            let layer_events: Vec<&Json> = events
                .iter()
                .filter(|e| e.get("layer").and_then(Json::as_str) == Some(t.name.as_str()))
                .collect();
            let cycles_of = |phase: &str| -> u64 {
                layer_events
                    .iter()
                    .filter(|e| e.get("phase").and_then(Json::as_str) == Some(phase))
                    .filter_map(|e| e.get("cycles").and_then(Json::as_u64))
                    .sum()
            };
            let busy: u64 = t.per_pe.iter().map(|p| p.busy_cycles).sum();
            let fills: u64 = t.per_pe.iter().map(|p| p.fill_cycles).sum();
            assert_eq!(cycles_of("compute"), busy, "layer {}", t.name);
            assert_eq!(cycles_of("fill"), fills, "layer {}", t.name);
            for e in &layer_events {
                let start = e.get("start_cycle").and_then(Json::as_u64).unwrap();
                let cycles = e.get("cycles").and_then(Json::as_u64).unwrap();
                assert!(start >= base && start + cycles <= base + t.cycles);
            }
            base += t.cycles;
        }

        // Per PE, slices never overlap (each PE is one serial timeline).
        let mut by_pe: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for e in &events {
            let pe = e.get("pe").and_then(Json::as_u64).unwrap();
            let start = e.get("start_cycle").and_then(Json::as_u64).unwrap();
            let cycles = e.get("cycles").and_then(Json::as_u64).unwrap();
            by_pe.entry(pe).or_default().push((start, start + cycles));
        }
        for (pe, mut slices) in by_pe {
            slices.sort_unstable();
            for w in slices.windows(2) {
                assert!(w[0].1 <= w[1].0, "PE {pe} slices overlap: {w:?}");
            }
        }

        // The timeline is deterministic: emitting twice (and rendering the
        // virtual-PE Chrome trace) produces identical payloads.
        let (_, events2) = capture();
        let strip = |evs: &[Json]| -> String {
            evs.iter()
                .map(|e| {
                    let Some(pairs) = e.as_object() else {
                        return String::new();
                    };
                    pairs
                        .iter()
                        .filter(|(k, _)| !matches!(k.as_str(), "seq" | "t_ms" | "tid"))
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&events), strip(&events2));
        let jsonl: String = events.iter().map(|e| format!("{e}\n")).collect();
        let doc = snapea_obs::chrome_trace(&jsonl, snapea_obs::Selection::VirtualPe).unwrap();
        assert!(snapea_obs::validate_chrome_trace(&doc).unwrap() > 0);
    }

    #[test]
    fn start_cycles_are_locally_monotone_per_pe() {
        let wl = layer(2, 6, 48, 25);
        let trace = trace_layer(&AccelConfig::snapea(), &wl);
        let mut last: Vec<u64> = vec![0; AccelConfig::snapea().pe_count()];
        for u in &trace.units {
            assert!(u.start_cycle >= last[u.pe], "pe {} went backwards", u.pe);
            last[u.pe] = u.start_cycle + u.fill_cycles + u.busy_cycles;
        }
    }
}
