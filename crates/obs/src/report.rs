//! Offline aggregation of an `events.jsonl` into a run summary: per-phase
//! wall time (from `span` events), training trajectory (`train/epoch`),
//! executor MAC savings (`exec/layer`), and simulator PE utilization
//! (`sim/layer`). Backs the `snapea-tool report` subcommand.

use crate::json::{parse, Json, JsonError};
use std::collections::BTreeMap;

/// Aggregated wall time for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// The full span path (`" > "`-joined).
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total milliseconds across all closures (inclusive of child spans).
    pub total_ms: f64,
    /// Self (exclusive) milliseconds: total minus the time spent in child
    /// spans, reconstructed from the `span_id`/`parent_id` tree. For logs
    /// from builds without span ids this equals `total_ms`.
    pub self_ms: f64,
}

/// Training trajectory summary from `train/epoch` events.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSummary {
    /// Number of epoch events seen.
    pub epochs: u64,
    /// Loss reported by the last epoch.
    pub final_loss: f64,
    /// Accuracy reported by the last epoch (0–1), when present.
    pub final_accuracy: Option<f64>,
}

/// Executor MAC accounting from `exec/layer` events.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSummary {
    /// Number of layer events.
    pub layers: u64,
    /// MACs a dense execution would perform.
    pub full_macs: u64,
    /// MACs actually performed under early termination.
    pub performed_macs: u64,
    /// Layer runs that reused a cached window plan (`gather_cache_hit`
    /// on the event; absent on logs from older builds counts as neither).
    pub gather_cache_hits: u64,
    /// Layer runs that had to build their window plan.
    pub gather_cache_misses: u64,
    /// Windows that ran through the eight-wide lane-blocked batch path
    /// (`lane_windows` on the event; 0 on logs from older builds).
    pub lane_windows: u64,
    /// Windows that ran through the scalar border/drain path.
    pub scalar_windows: u64,
}

impl ExecSummary {
    /// Fraction of dense MACs avoided (0 when no dense MACs recorded).
    pub fn saved_fraction(&self) -> f64 {
        if self.full_macs == 0 {
            0.0
        } else {
            1.0 - self.performed_macs as f64 / self.full_macs as f64
        }
    }

    /// Fraction of windows taking the lane-blocked path (0 when the log
    /// carries no lane counters).
    pub fn lane_fraction(&self) -> f64 {
        let total = self.lane_windows + self.scalar_windows;
        if total == 0 {
            0.0
        } else {
            self.lane_windows as f64 / total as f64
        }
    }
}

/// Simulator PE statistics from `sim/layer` events.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// Number of layer events.
    pub layers: u64,
    /// Total simulated cycles across layers.
    pub cycles: u64,
    /// Cycle-weighted mean PE utilization (0–1).
    pub mean_utilization: f64,
    /// Worst per-layer imbalance (mean fraction of cycles PEs spend waiting
    /// at the layer barrier, 0–1).
    pub max_imbalance: f64,
}

/// The aggregate of one event log.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Total events parsed.
    pub events: u64,
    /// Event count per kind.
    pub kinds: BTreeMap<String, u64>,
    /// Span aggregation rows, sorted by total time descending.
    pub phases: Vec<PhaseRow>,
    /// Training summary, when the log contains `train/epoch` events.
    pub train: Option<TrainSummary>,
    /// Executor summary, when the log contains `exec/layer` events.
    pub exec: Option<ExecSummary>,
    /// Simulator summary, when the log contains `sim/layer` events.
    pub sim: Option<SimSummary>,
}

fn f(e: &Json, key: &str) -> Option<f64> {
    e.get(key).and_then(Json::as_f64)
}

fn u(e: &Json, key: &str) -> Option<u64> {
    e.get(key).and_then(Json::as_u64)
}

impl Report {
    /// Parses a JSON Lines event log. Blank lines are skipped; a malformed
    /// line is an error (truncated logs should be diagnosed, not papered
    /// over).
    pub fn from_jsonl(text: &str) -> Result<Report, JsonError> {
        let mut report = Report::default();
        // Per-path (count, total_ms); self time needs a second pass over the
        // span records once every child's parent link has been seen.
        let mut spans: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut span_records: Vec<(Option<u64>, f64, String)> = Vec::new(); // (id, ms, path)
        let mut child_ms: BTreeMap<u64, f64> = BTreeMap::new(); // parent id -> sum of child ms
        let mut util_weighted = 0.0f64;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let e = parse(line)?;
            report.events += 1;
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            *report.kinds.entry(kind.clone()).or_insert(0) += 1;
            match kind.as_str() {
                "span" => {
                    let path = e
                        .get("path")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string();
                    let ms = f(&e, "ms").unwrap_or(0.0);
                    let slot = spans.entry(path.clone()).or_insert((0, 0.0));
                    slot.0 += 1;
                    slot.1 += ms;
                    span_records.push((u(&e, "span_id"), ms, path));
                    if let Some(parent) = u(&e, "parent_id").filter(|&p| p != 0) {
                        *child_ms.entry(parent).or_insert(0.0) += ms;
                    }
                }
                "train/epoch" => {
                    let t = report.train.get_or_insert(TrainSummary {
                        epochs: 0,
                        final_loss: 0.0,
                        final_accuracy: None,
                    });
                    t.epochs += 1;
                    if let Some(loss) = f(&e, "loss") {
                        t.final_loss = loss;
                    }
                    if let Some(acc) = f(&e, "accuracy") {
                        t.final_accuracy = Some(acc);
                    }
                }
                "exec/layer" => {
                    let x = report.exec.get_or_insert(ExecSummary {
                        layers: 0,
                        full_macs: 0,
                        performed_macs: 0,
                        gather_cache_hits: 0,
                        gather_cache_misses: 0,
                        lane_windows: 0,
                        scalar_windows: 0,
                    });
                    x.layers += 1;
                    x.full_macs += u(&e, "full_macs").unwrap_or(0);
                    x.performed_macs += u(&e, "performed_macs").unwrap_or(0);
                    x.lane_windows += u(&e, "lane_windows").unwrap_or(0);
                    x.scalar_windows += u(&e, "scalar_windows").unwrap_or(0);
                    match e.get("gather_cache_hit").and_then(Json::as_bool) {
                        Some(true) => x.gather_cache_hits += 1,
                        Some(false) => x.gather_cache_misses += 1,
                        None => {}
                    }
                }
                "sim/layer" => {
                    let s = report.sim.get_or_insert(SimSummary {
                        layers: 0,
                        cycles: 0,
                        mean_utilization: 0.0,
                        max_imbalance: 0.0,
                    });
                    s.layers += 1;
                    let cycles = u(&e, "cycles").unwrap_or(0);
                    s.cycles += cycles;
                    util_weighted += f(&e, "utilization").unwrap_or(0.0) * cycles as f64;
                    let imb = f(&e, "imbalance").unwrap_or(0.0);
                    if imb > s.max_imbalance {
                        s.max_imbalance = imb;
                    }
                }
                _ => {}
            }
        }
        if let Some(s) = report.sim.as_mut() {
            if s.cycles > 0 {
                s.mean_utilization = util_weighted / s.cycles as f64;
            }
        }
        // Exclusive time: each span's ms minus its direct children's, folded
        // back onto the span's path (negative residue from clock skew clamps
        // to zero).
        let mut self_by_path: BTreeMap<&str, f64> = BTreeMap::new();
        for (id, ms, path) in &span_records {
            let children = id.and_then(|i| child_ms.get(&i)).copied().unwrap_or(0.0);
            *self_by_path.entry(path.as_str()).or_insert(0.0) += (ms - children).max(0.0);
        }
        report.phases = spans
            .iter()
            .map(|(path, &(count, total_ms))| PhaseRow {
                path: path.clone(),
                count,
                total_ms,
                self_ms: self_by_path.get(path.as_str()).copied().unwrap_or(0.0),
            })
            .collect();
        report.phases.sort_by(|a, b| {
            b.self_ms
                .partial_cmp(&a.self_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(report)
    }

    /// The report as a JSON object (the `--json` shape of
    /// `snapea-tool report`).
    pub fn to_json(&self) -> Json {
        let kinds = Json::Obj(
            self.kinds
                .iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        );
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("path", Json::from(p.path.clone())),
                        ("count", Json::U64(p.count)),
                        ("total_ms", Json::F64(p.total_ms)),
                        ("self_ms", Json::F64(p.self_ms)),
                    ])
                })
                .collect(),
        );
        let mut pairs = vec![
            ("events".to_string(), Json::U64(self.events)),
            ("kinds".to_string(), kinds),
            ("phases".to_string(), phases),
        ];
        if let Some(t) = &self.train {
            pairs.push((
                "train".to_string(),
                Json::obj(vec![
                    ("epochs", Json::U64(t.epochs)),
                    ("final_loss", Json::F64(t.final_loss)),
                    (
                        "final_accuracy",
                        t.final_accuracy.map(Json::F64).unwrap_or(Json::Null),
                    ),
                ]),
            ));
        }
        if let Some(x) = &self.exec {
            pairs.push((
                "exec".to_string(),
                Json::obj(vec![
                    ("layers", Json::U64(x.layers)),
                    ("full_macs", Json::U64(x.full_macs)),
                    ("performed_macs", Json::U64(x.performed_macs)),
                    ("saved_fraction", Json::F64(x.saved_fraction())),
                    ("gather_cache_hits", Json::U64(x.gather_cache_hits)),
                    ("gather_cache_misses", Json::U64(x.gather_cache_misses)),
                    ("lane_windows", Json::U64(x.lane_windows)),
                    ("scalar_windows", Json::U64(x.scalar_windows)),
                    ("lane_fraction", Json::F64(x.lane_fraction())),
                ]),
            ));
        }
        if let Some(s) = &self.sim {
            pairs.push((
                "sim".to_string(),
                Json::obj(vec![
                    ("layers", Json::U64(s.layers)),
                    ("cycles", Json::U64(s.cycles)),
                    ("mean_utilization", Json::F64(s.mean_utilization)),
                    ("max_imbalance", Json::F64(s.max_imbalance)),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// The report as an aligned human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("events: {}\n", self.events));
        if !self.kinds.is_empty() {
            out.push_str("\nevent kinds\n");
            for (kind, count) in &self.kinds {
                out.push_str(&format!("  {kind:<28} {count:>8}\n"));
            }
        }
        if !self.phases.is_empty() {
            out.push_str(
                "\nphase                                        count   total ms    self ms\n",
            );
            for p in &self.phases {
                out.push_str(&format!(
                    "  {:<42} {:>5} {:>10.1} {:>10.1}\n",
                    p.path, p.count, p.total_ms, p.self_ms
                ));
            }
        }
        if let Some(t) = &self.train {
            out.push_str(&format!(
                "\ntraining: {} epochs, final loss {:.4}{}\n",
                t.epochs,
                t.final_loss,
                t.final_accuracy
                    .map(|a| format!(", accuracy {:.2}%", a * 100.0))
                    .unwrap_or_default()
            ));
        }
        if let Some(x) = &self.exec {
            out.push_str(&format!(
                "\nexecutor: {} layer runs, {} dense MACs, {} performed, {:.1}% saved\n",
                x.layers,
                x.full_macs,
                x.performed_macs,
                x.saved_fraction() * 100.0
            ));
            if x.gather_cache_hits + x.gather_cache_misses > 0 {
                out.push_str(&format!(
                    "  window-plan cache: {} hits, {} misses\n",
                    x.gather_cache_hits, x.gather_cache_misses
                ));
            }
            if x.lane_windows + x.scalar_windows > 0 {
                out.push_str(&format!(
                    "  lane engine: {} windows lane-blocked, {} scalar ({:.1}% lane)\n",
                    x.lane_windows,
                    x.scalar_windows,
                    x.lane_fraction() * 100.0
                ));
            }
        }
        if let Some(s) = &self.sim {
            out.push_str(&format!(
                "\nsimulator: {} layers, {} cycles, mean PE utilization {:.1}%, worst barrier wait {:.1}%\n",
                s.layers,
                s.cycles,
                s.mean_utilization * 100.0,
                s.max_imbalance * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> String {
        [
            r#"{"seq":0,"t_ms":0.1,"kind":"train/epoch","epoch":1,"loss":1.5,"accuracy":0.4}"#,
            r#"{"seq":1,"t_ms":0.2,"kind":"train/epoch","epoch":2,"loss":0.9,"accuracy":0.6}"#,
            r#"{"seq":2,"t_ms":0.3,"kind":"span","span_id":2,"parent_id":1,"name":"optimizer/local","path":"optimizer > optimizer/local","depth":2,"ms":4.0}"#,
            r#"{"seq":3,"t_ms":0.3,"kind":"span","span_id":1,"parent_id":0,"name":"optimizer","path":"optimizer","depth":1,"ms":10.0}"#,
            r#"{"seq":8,"t_ms":0.4,"kind":"span","span_id":3,"parent_id":0,"name":"optimizer","path":"optimizer","depth":1,"ms":5.0}"#,
            r#"{"seq":4,"t_ms":0.5,"kind":"exec/layer","layer":"conv1","full_macs":1000,"performed_macs":600,"gather_cache_hit":false,"lane_windows":24,"scalar_windows":8}"#,
            r#"{"seq":5,"t_ms":0.6,"kind":"exec/layer","layer":"conv2","full_macs":1000,"performed_macs":400,"gather_cache_hit":true,"lane_windows":16,"scalar_windows":0}"#,
            r#"{"seq":6,"t_ms":0.7,"kind":"sim/layer","layer":"conv1","cycles":100,"utilization":0.5,"imbalance":1.5}"#,
            r#"{"seq":7,"t_ms":0.8,"kind":"sim/layer","layer":"conv2","cycles":300,"utilization":0.9,"imbalance":1.1}"#,
            "",
        ]
        .join("\n")
    }

    #[test]
    fn aggregates_all_sections() {
        let r = Report::from_jsonl(&sample_log()).expect("parses");
        assert_eq!(r.events, 9);
        assert_eq!(r.kinds.get("train/epoch"), Some(&2));

        let t = r.train.as_ref().expect("train summary");
        assert_eq!(t.epochs, 2);
        assert_eq!(t.final_loss, 0.9);
        assert_eq!(t.final_accuracy, Some(0.6));

        let x = r.exec.as_ref().expect("exec summary");
        assert_eq!(x.full_macs, 2000);
        assert_eq!(x.performed_macs, 1000);
        assert!((x.saved_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(x.gather_cache_hits, 1);
        assert_eq!(x.gather_cache_misses, 1);
        assert_eq!(x.lane_windows, 40);
        assert_eq!(x.scalar_windows, 8);
        assert!((x.lane_fraction() - 40.0 / 48.0).abs() < 1e-12);

        let s = r.sim.as_ref().expect("sim summary");
        assert_eq!(s.cycles, 400);
        // (0.5*100 + 0.9*300) / 400 = 0.8
        assert!((s.mean_utilization - 0.8).abs() < 1e-12);
        assert_eq!(s.max_imbalance, 1.5);

        assert_eq!(r.phases.len(), 2);
        // "optimizer" ran twice for 15ms total; 4ms of the first run was
        // spent inside "optimizer/local", so its self time is 11ms. Rows are
        // sorted by self time.
        assert_eq!(r.phases[0].path, "optimizer");
        assert_eq!(r.phases[0].count, 2);
        assert!((r.phases[0].total_ms - 15.0).abs() < 1e-12);
        assert!((r.phases[0].self_ms - 11.0).abs() < 1e-12);
        assert_eq!(r.phases[1].path, "optimizer > optimizer/local");
        assert!((r.phases[1].total_ms - 4.0).abs() < 1e-12);
        assert!((r.phases[1].self_ms - 4.0).abs() < 1e-12);
    }

    #[test]
    fn spans_without_ids_fall_back_to_total_as_self() {
        let log = concat!(
            "{\"seq\":0,\"t_ms\":0.1,\"kind\":\"span\",\"path\":\"legacy\",\"ms\":7.0}\n",
            "{\"seq\":1,\"t_ms\":0.2,\"kind\":\"span\",\"path\":\"legacy\",\"ms\":3.0}\n",
        );
        let r = Report::from_jsonl(log).unwrap();
        assert_eq!(r.phases.len(), 1);
        assert!((r.phases[0].total_ms - 10.0).abs() < 1e-12);
        assert!((r.phases[0].self_ms - 10.0).abs() < 1e-12);
    }

    #[test]
    fn text_and_json_render() {
        let r = Report::from_jsonl(&sample_log()).unwrap();
        let text = r.render_text();
        assert!(text.contains("events: 9"));
        assert!(text.contains("self ms"));
        assert!(text.contains("optimizer"));
        assert!(text.contains("50.0% saved"));
        assert!(text.contains("window-plan cache: 1 hits, 1 misses"));
        assert!(text.contains("lane engine: 40 windows lane-blocked, 8 scalar (83.3% lane)"));
        assert!(text.contains("mean PE utilization 80.0%"));

        let j = r.to_json();
        assert_eq!(j.get("events").and_then(Json::as_u64), Some(9));
        let phases = j.get("phases").and_then(Json::as_array).unwrap();
        assert!(phases
            .iter()
            .all(|p| p.get("self_ms").and_then(Json::as_f64).is_some()));
        assert!(j
            .get("exec")
            .and_then(|x| x.get("saved_fraction"))
            .is_some());
        assert_eq!(
            j.get("exec")
                .and_then(|x| x.get("gather_cache_hits"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // The JSON form must itself parse back.
        let round = crate::json::parse(&j.to_string()).unwrap();
        assert_eq!(round.get("events").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(Report::from_jsonl("{\"kind\":\"a\"}\nnot json\n").is_err());
    }

    #[test]
    fn empty_log_is_empty_report() {
        let r = Report::from_jsonl("\n\n").unwrap();
        assert_eq!(r.events, 0);
        assert!(r.train.is_none() && r.exec.is_none() && r.sim.is_none());
    }
}
