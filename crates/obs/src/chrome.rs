//! Chrome trace-event export: converts an `events.jsonl` run log into the
//! JSON trace format that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly (`{"traceEvents": [...]}` with `ph: "X"` complete events).
//!
//! Two timebases coexist in one file, separated by process id:
//!
//! * **pid 1 — wall clock.** `span` events become complete (`ph: "X"`)
//!   slices on their emitting thread's track (`ts`/`dur` in microseconds,
//!   from `start_ms`/`ms`); any other event that carries both `start_ms`
//!   and `ms` (e.g. `par/worker` lanes) renders the same way, and remaining
//!   events become instants (`ph: "i"`).
//! * **pid 2 — virtual cycles.** `sim/pe/phase` events from the accel
//!   simulator place each PE's `fill`/`compute`/`stall` phases on a per-PE
//!   track with **1 µs = 1 cycle**. Virtual events carry no wall-clock or
//!   envelope-derived field, so this sub-trace is a pure function of the
//!   simulated workload: bit-identical at any `SNAPEA_THREADS`.
//!
//! [`chrome_trace`] renders the combined file; [`Selection::VirtualPe`]
//! restricts the output to the pid-2 sub-trace (the form the check gate
//! diffs across thread counts).

use crate::json::{parse, Json, JsonError};

/// Which part of the log to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Everything: wall-clock spans/instants (pid 1) plus virtual PE
    /// timelines (pid 2).
    All,
    /// Only the deterministic virtual-time PE timelines (pid 2).
    VirtualPe,
}

/// Envelope fields that never become `args` (they are encoded in the trace
/// event's own structure instead).
const ENVELOPE: &[&str] = &["seq", "t_ms", "kind", "tid", "span_id", "parent_id"];

fn args_except(e: &Json, skip: &[&str]) -> Json {
    let mut out: Vec<(String, Json)> = Vec::new();
    if let Some(pairs) = e.as_object() {
        for (k, v) in pairs {
            if ENVELOPE.contains(&k.as_str()) || skip.contains(&k.as_str()) {
                continue;
            }
            out.push((k.clone(), v.clone()));
        }
    }
    Json::Obj(out)
}

fn meta(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::from(name)),
        ("ph".to_string(), Json::from("M")),
        ("pid".to_string(), Json::U64(pid)),
    ];
    if let Some(t) = tid {
        pairs.push(("tid".to_string(), Json::U64(t)));
    }
    pairs.push((
        "args".to_string(),
        Json::obj(vec![("name", Json::from(value))]),
    ));
    Json::Obj(pairs)
}

fn complete_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Json,
) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::from(name)),
        ("cat".to_string(), Json::from(cat)),
        ("ph".to_string(), Json::from("X")),
        ("pid".to_string(), Json::U64(pid)),
        ("tid".to_string(), Json::U64(tid)),
        ("ts".to_string(), Json::F64(ts_us)),
        ("dur".to_string(), Json::F64(dur_us)),
        ("args".to_string(), args),
    ])
}

/// One parsed virtual PE phase, with a deterministic sort key.
struct PePhase {
    start_cycle: u64,
    pe: u64,
    phase: String,
    cycles: u64,
    args: Json,
}

/// Renders `events.jsonl` text as a Chrome trace-event JSON document.
///
/// The output field order is fixed and events are sorted deterministically:
/// metadata first, then wall-clock events by `seq`, then virtual PE events
/// by `(start_cycle, pe, phase)` — so the same log always produces the same
/// bytes, and (for [`Selection::VirtualPe`]) the same *simulation* produces
/// the same bytes regardless of worker-pool size.
///
/// # Errors
///
/// Returns an error when a non-blank line is not valid JSON.
pub fn chrome_trace(jsonl: &str, selection: Selection) -> Result<String, JsonError> {
    let mut wall: Vec<(u64, Json)> = Vec::new(); // (seq, trace event)
    let mut pe_phases: Vec<PePhase> = Vec::new();
    let mut wall_tids: Vec<u64> = Vec::new();
    let mut pes: Vec<u64> = Vec::new();

    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let e = parse(line)?;
        let kind = e.get("kind").and_then(Json::as_str).unwrap_or("?");
        let seq = e.get("seq").and_then(Json::as_u64).unwrap_or(0);
        if kind == "sim/pe/phase" {
            let pe = e.get("pe").and_then(Json::as_u64).unwrap_or(0);
            pe_phases.push(PePhase {
                start_cycle: e.get("start_cycle").and_then(Json::as_u64).unwrap_or(0),
                pe,
                phase: e
                    .get("phase")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                cycles: e.get("cycles").and_then(Json::as_u64).unwrap_or(0),
                args: args_except(&e, &["pe", "phase", "start_cycle", "cycles"]),
            });
            if !pes.contains(&pe) {
                pes.push(pe);
            }
            continue;
        }
        if selection == Selection::VirtualPe {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        if !wall_tids.contains(&tid) {
            wall_tids.push(tid);
        }
        let event = if kind == "span" {
            let name = e.get("name").and_then(Json::as_str).unwrap_or("span");
            let ts = e.get("start_ms").and_then(Json::as_f64).unwrap_or(0.0) * 1e3;
            let dur = e.get("ms").and_then(Json::as_f64).unwrap_or(0.0) * 1e3;
            let mut args = vec![
                (
                    "span_id".to_string(),
                    Json::U64(e.get("span_id").and_then(Json::as_u64).unwrap_or(0)),
                ),
                (
                    "parent_id".to_string(),
                    Json::U64(e.get("parent_id").and_then(Json::as_u64).unwrap_or(0)),
                ),
            ];
            if let Json::Obj(extra) = args_except(&e, &["name", "start_ms", "ms"]) {
                args.extend(extra);
            }
            complete_event(name, "span", 1, tid, ts, dur, Json::Obj(args))
        } else if let (Some(start_ms), Some(ms)) = (
            e.get("start_ms").and_then(Json::as_f64),
            e.get("ms").and_then(Json::as_f64),
        ) {
            // Any event carrying its own start/duration (e.g. `par/worker`
            // lane records) renders as a complete slice too.
            complete_event(
                kind,
                "lane",
                1,
                tid,
                start_ms * 1e3,
                ms * 1e3,
                args_except(&e, &["start_ms", "ms"]),
            )
        } else {
            let ts = e.get("t_ms").and_then(Json::as_f64).unwrap_or(0.0) * 1e3;
            Json::Obj(vec![
                ("name".to_string(), Json::from(kind)),
                ("cat".to_string(), Json::from("event")),
                ("ph".to_string(), Json::from("i")),
                ("pid".to_string(), Json::U64(1)),
                ("tid".to_string(), Json::U64(tid)),
                ("ts".to_string(), Json::F64(ts)),
                ("s".to_string(), Json::from("t")),
                ("args".to_string(), args_except(&e, &[])),
            ])
        };
        wall.push((seq, event));
    }

    // Deterministic ordering regardless of input-line order.
    wall.sort_by_key(|(seq, _)| *seq);
    pe_phases.sort_by(|a, b| (a.start_cycle, a.pe, &a.phase).cmp(&(b.start_cycle, b.pe, &b.phase)));
    wall_tids.sort_unstable();
    pes.sort_unstable();

    let mut events: Vec<Json> = Vec::new();
    if selection == Selection::All && !wall.is_empty() {
        events.push(meta("process_name", 1, None, "snapea (wall clock)"));
        for &tid in &wall_tids {
            let label = if tid == 0 {
                "main".to_string()
            } else {
                format!("thread {tid}")
            };
            events.push(meta("thread_name", 1, Some(tid), &label));
        }
    }
    if !pe_phases.is_empty() {
        events.push(meta(
            "process_name",
            2,
            None,
            "snapea-accel virtual PEs (1 us = 1 cycle)",
        ));
        for &pe in &pes {
            events.push(meta("thread_name", 2, Some(pe), &format!("PE {pe}")));
        }
    }
    if selection == Selection::All {
        events.extend(wall.into_iter().map(|(_, e)| e));
    }
    for p in pe_phases {
        events.push(complete_event(
            &p.phase,
            "pe",
            2,
            p.pe,
            p.start_cycle as f64,
            p.cycles as f64,
            p.args,
        ));
    }

    let doc = Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::from("ms")),
    ]);
    Ok(format!("{doc}\n"))
}

/// Structural validation of a rendered trace (the programmatic schema check
/// used by tests and the check-script smoke): the document must parse, hold
/// a `traceEvents` array, and every entry must carry `name`/`ph`/`pid`
/// (with `tid`/`ts`/`dur` where the phase requires them). Returns the
/// number of non-metadata events.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    let mut real = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if e.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if e.get("pid").and_then(Json::as_u64).is_none() {
            return Err(format!("event {i}: missing pid"));
        }
        match ph {
            "M" => continue,
            "X" => {
                for key in ["tid", "ts", "dur"] {
                    if e.get(key).and_then(Json::as_f64).is_none() {
                        return Err(format!("event {i}: X without {key}"));
                    }
                }
                let dur = e.get("dur").and_then(Json::as_f64).unwrap_or(-1.0);
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
            }
            "i" => {
                if e.get("ts").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: i without ts"));
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
        real += 1;
    }
    Ok(real)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> String {
        [
            r#"{"seq":0,"t_ms":0.1,"kind":"train/loaded","tid":0,"images":4}"#,
            r#"{"seq":1,"t_ms":5.0,"kind":"span","tid":0,"span_id":2,"parent_id":1,"name":"exec/layer","path":"repro > exec/layer","depth":2,"start_ms":1.0,"ms":4.0,"detail":"conv1"}"#,
            r#"{"seq":2,"t_ms":6.0,"kind":"span","tid":0,"span_id":1,"parent_id":0,"name":"repro","path":"repro","depth":1,"start_ms":0.5,"ms":5.5}"#,
            r#"{"seq":3,"t_ms":6.1,"kind":"par/worker","tid":2,"worker":1,"start_ms":2.0,"ms":1.5,"tasks":8}"#,
            r#"{"seq":4,"t_ms":7.0,"kind":"sim/pe/phase","tid":0,"layer":"conv1","pe":0,"phase":"compute","start_cycle":10,"cycles":90,"macs":720}"#,
            r#"{"seq":5,"t_ms":7.0,"kind":"sim/pe/phase","tid":0,"layer":"conv1","pe":1,"phase":"stall","start_cycle":80,"cycles":20}"#,
        ]
        .join("\n")
    }

    #[test]
    fn renders_valid_trace_with_both_pids() {
        let out = chrome_trace(&sample_log(), Selection::All).expect("renders");
        let n = validate_chrome_trace(&out).expect("schema-valid");
        assert_eq!(n, 6, "six non-metadata events");
        let doc = parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("exec/layer"))
            .expect("span slice present");
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(4000.0));
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("detail"))
                .and_then(Json::as_str),
            Some("conv1")
        );
        let lane = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("par/worker"))
            .expect("worker lane slice");
        assert_eq!(lane.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(lane.get("tid").and_then(Json::as_u64), Some(2));
        let pe = events
            .iter()
            .find(|e| {
                e.get("pid").and_then(Json::as_u64) == Some(2) && {
                    e.get("ph").and_then(Json::as_str) == Some("X")
                }
            })
            .expect("virtual PE slice");
        assert_eq!(pe.get("ts").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn virtual_pe_selection_drops_wall_clock_and_is_input_order_independent() {
        let out = chrome_trace(&sample_log(), Selection::VirtualPe).expect("renders");
        let doc = parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("pid").and_then(Json::as_u64) == Some(2)));

        // Shuffled input lines produce byte-identical virtual output (the
        // sort key is virtual time, not envelope order).
        let log = sample_log();
        let mut lines: Vec<&str> = log.lines().collect();
        lines.reverse();
        let out2 = chrome_trace(&lines.join("\n"), Selection::VirtualPe).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn instant_events_keep_their_payload_as_args() {
        let out = chrome_trace(&sample_log(), Selection::All).unwrap();
        let doc = parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let inst = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("train/loaded"))
            .expect("instant event");
        assert_eq!(inst.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            inst.get("args")
                .and_then(|a| a.get("images"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(chrome_trace("not json", Selection::All).is_err());
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("[]").is_err(), "no traceEvents");
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err(),
            "missing fields"
        );
        assert_eq!(validate_chrome_trace(r#"{"traceEvents":[]}"#), Ok(0));
    }
}
