//! `snapea-obs` — unified observability for the SnaPEA reproduction.
//!
//! The paper's evaluation methodology (§VI-A) is built on per-component
//! event logs; this crate is the reproduction's equivalent substrate, shared
//! by every layer of the workspace:
//!
//! * [`metrics`] — a global registry of relaxed-atomic counters, gauges, and
//!   fixed-bucket histograms. Always on; an increment is one
//!   `fetch_add(Relaxed)` with no allocation, cheap enough for the
//!   executor's per-layer hot path.
//! * [`span`] — hierarchical wall-time span timers ([`span!`]) that nest via
//!   a thread-local path stack and charge totals into the metrics registry.
//! * [`sink`] — pluggable event sinks ([`event!`]): a stderr pretty-printer
//!   for interactive runs and a JSONL file sink for run manifests. With no
//!   sink installed, [`sink::enabled`] is one relaxed load and no event
//!   payload is ever built.
//! * [`run`] — per-invocation run directories (`repro-results/<run>/`) with
//!   an `events.jsonl` log and a `manifest.json` stamping git revision,
//!   configuration, and elapsed time.
//! * [`report`] — offline aggregation of an event log into per-phase time
//!   (total and self/exclusive, from the span tree), MAC savings, and PE
//!   utilization (the `snapea-tool report` subcommand).
//! * [`chrome`] — Chrome trace-event export of an event log (wall-clock
//!   spans plus the simulator's deterministic virtual-time PE timelines),
//!   loadable in `chrome://tracing` / Perfetto.
//! * [`perfdiff`] — structural diff of two `BENCH_*.json` documents with a
//!   regression threshold (the `snapea-tool perf-diff` gate).
//! * [`json`] — the minimal JSON value/parser/writer backing all of the
//!   above, so this crate stays dependency-free and buildable offline.
//!
//! Event kinds are namespaced by layer: `train/…` (snapea-nn),
//! `optimizer/…` and `exec/…` (snapea core), `sim/…` (snapea-accel),
//! `run/…` (snapea-bench), plus `span` for timer closures.
//!
//! Environment knobs: `SNAPEA_LOG=off` silences the stderr sink;
//! `SNAPEA_LOG_FILE=<path>` tees events to a JSONL file;
//! `SNAPEA_TRACE_DETAIL=1` additionally enables the fine-grained trace
//! sources (per-kernel executor spans, per-worker pool lanes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod perfdiff;
pub mod report;
pub mod run;
pub mod sink;
pub mod span;

pub use chrome::{chrome_trace, validate_chrome_trace, Selection};
pub use json::{parse, Json, JsonError};
pub use metrics::{
    counter, gauge, histogram, log_histogram, registry, Counter, Gauge, Histogram, LogHistogram,
    LogHistogramSnapshot, Registry,
};
pub use perfdiff::{DiffRow, PerfDiff};
pub use report::Report;
pub use run::{git_rev, RunHandle};
pub use sink::{
    detail_enabled, enabled, set_detail_enabled, FileSink, MemorySink, Sink, StderrSink,
};
pub use span::{SpanGuard, Stopwatch};
