//! A minimal JSON value, writer, and parser.
//!
//! The event log format is JSONL: one self-contained JSON object per line.
//! The rest of the workspace serialises *models* with `serde`/`serde_json`;
//! events deliberately do not, so that `snapea-obs` stays dependency-free and
//! loadable from every crate (including the leaves `serde` itself sits
//! under). Integers are kept exact ([`Json::U64`]/[`Json::I64`]) because
//! cycle and MAC counters exceed `f64`'s 53-bit integer range on large runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (events read better when `type` and
/// `t_ms` lead), so they are a `Vec` of pairs rather than a map.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer.
    U64(u64),
    /// An exact signed integer (only negatives end up here when parsing).
    I64(i64),
    /// A floating-point number. Non-finite values serialise as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: Vec<(K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (coercing exact integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object's pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::I64(v) => {
                use fmt::Write as _;
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    use fmt::Write as _;
                    // `{}` on f64 is the shortest round-trippable decimal.
                    let _ = write!(out, "{v}");
                    // Keep the token a JSON *number* but unambiguous: `1` and
                    // `1.0` parse identically, so no suffix is needed.
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn fmt_u64(v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap_or("0")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Self {
        Json::from(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::F64(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}
impl<K: Into<String>, V: Into<Json>> From<BTreeMap<K, V>> for Json {
    fn from(v: BTreeMap<K, V>) -> Self {
        Json::Obj(v.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free ASCII/UTF-8 run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output (we never emit them); map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&v.to_string()).expect("roundtrip parses")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::F64(1.5),
            Json::F64(-0.0625),
            Json::Str("hello".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v}");
        }
    }

    #[test]
    fn exact_integers_survive_beyond_f64_range() {
        let v = Json::U64((1 << 60) + 1);
        assert_eq!(roundtrip(&v).as_u64(), Some((1 << 60) + 1));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab\u{0007}unicode\u{00e9}";
        let v = Json::Str(s.into());
        let text = v.to_string();
        assert!(text.contains("\\n") && text.contains("\\\"") && text.contains("\\u0007"));
        assert_eq!(roundtrip(&v).as_str(), Some(s));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj(vec![
            ("type", Json::from("span")),
            ("ms", Json::from(12.25)),
            (
                "tags",
                Json::Arr(vec![Json::from("a"), Json::from(1u64), Json::Null]),
            ),
            ("inner", Json::obj(vec![("k", 3u64)])),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(v.get("ms").and_then(Json::as_f64), Some(12.25));
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("k"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj(vec![("z", 1u64), ("a", 2u64)]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn negative_from_impl_normalises_to_u64_when_possible() {
        assert_eq!(Json::from(5i64), Json::U64(5));
        assert_eq!(Json::from(-5i64), Json::I64(-5));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1.2.3x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        assert!(parse("[1] x").is_err(), "trailing chars rejected");
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }
}
