//! Pluggable event sinks.
//!
//! Events are structured objects (`kind` + timestamp + free fields). The
//! process holds a global list of sinks; [`emit`] fans each event out to all
//! of them. Two sinks ship with the crate:
//!
//! * [`StderrSink`] — a human-oriented pretty-printer for interactive runs
//!   (`[   12.3ms] train/epoch  epoch=1 loss=0.42`);
//! * [`FileSink`] — machine-oriented JSON Lines, one event per line, used
//!   for the `repro-results/<run>/events.jsonl` run manifests.
//!
//! With no sinks installed, [`enabled`] is `false` and instrumented code
//! must skip event construction entirely — a single relaxed atomic load is
//! the whole cost of the disabled path. Environment control:
//!
//! * `SNAPEA_LOG=off|0|none|quiet` suppresses the stderr sink;
//! * `SNAPEA_LOG_FILE=<path>` additionally installs a JSONL file sink.

use crate::json::Json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A destination for structured events.
pub trait Sink: Send {
    /// Consumes one event (an object with at least `seq`, `t_ms`, `kind`).
    fn emit(&mut self, event: &Json);
    /// Flushes buffered output (called by [`flush`] and on manifest close).
    fn flush(&mut self) {}
}

static HAS_SINK: AtomicBool = AtomicBool::new(false);

/// Small per-thread integer ids for event attribution (allocation order of
/// first emission, so ids are compact but not stable across runs — consumers
/// must treat them as opaque lane labels).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: std::cell::OnceCell<u64> = const { std::cell::OnceCell::new() };
}

/// This thread's small integer id (assigned on first use).
pub fn thread_id() -> u64 {
    TID.with(|t| *t.get_or_init(|| NEXT_TID.fetch_add(1, Ordering::Relaxed)))
}

/// The sink table: the sequence counter lives **inside** the same mutex as
/// the sinks, so the `seq` order of events is exactly the order they reach
/// every sink — a JSONL file shuffled by post-processing re-sorts to one
/// unique, gap-free order.
#[derive(Default)]
struct SinkTable {
    seq: u64,
    sinks: Vec<Box<dyn Sink>>,
}

fn sinks() -> &'static Mutex<SinkTable> {
    static SINKS: OnceLock<Mutex<SinkTable>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(SinkTable::default()))
}

/// Locks the sink registry, recovering from poisoning: a sink that panicked
/// mid-emit leaves the table itself intact, and observability must never
/// take the process down with it.
fn lock_sinks() -> std::sync::MutexGuard<'static, SinkTable> {
    sinks()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[allow(clippy::disallowed_methods)] // the obs layer owns the wall clock
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Milliseconds since the first obs call in this process. Event timestamps
/// are relative (wall-clock anchors live in the run manifest instead).
pub fn now_ms() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e3
}

/// `true` when at least one sink is installed. Instrumented code checks this
/// (one relaxed load) before building any event payload, so the disabled
/// path performs no allocation.
#[inline]
pub fn enabled() -> bool {
    HAS_SINK.load(Ordering::Relaxed)
}

/// Detail-trace state: 0 = unresolved, 1 = off, 2 = on.
static DETAIL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// `true` when `SNAPEA_TRACE_DETAIL` is set to `1` (or `true`) in the
/// environment: opt-in for the fine-grained trace sources — per-kernel
/// executor spans and per-worker pool lanes — that would swamp the event
/// log of a full reproduction run if they were always on. Resolved once
/// and cached (one relaxed load afterwards); combine with [`enabled`] (no
/// sink still means no events). Override with [`set_detail_enabled`].
pub fn detail_enabled() -> bool {
    match DETAIL.load(Ordering::Relaxed) {
        0 => {
            #[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
            let on = std::env::var("SNAPEA_TRACE_DETAIL")
                .map(|v| {
                    let v = v.trim();
                    v == "1" || v.eq_ignore_ascii_case("true")
                })
                .unwrap_or(false);
            DETAIL.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        n => n == 2,
    }
}

/// Overrides the detail-trace opt-in for the rest of the process (tests and
/// tools that cannot set the environment before the first resolve). Detail
/// events carry wall times only and never feed back into results, so
/// toggling this mid-run is always safe.
pub fn set_detail_enabled(on: bool) {
    DETAIL.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Installs a sink. Events emitted from now on are fanned out to it.
pub fn install(sink: Box<dyn Sink>) {
    lock_sinks().sinks.push(sink);
    HAS_SINK.store(true, Ordering::Relaxed);
}

/// Removes every sink (used by tests and at manifest close), flushing them
/// first.
pub fn clear() {
    let mut g = lock_sinks();
    for s in g.sinks.iter_mut() {
        s.flush();
    }
    g.sinks.clear();
    HAS_SINK.store(false, Ordering::Relaxed);
}

/// Builds the event object and fans it out to every installed sink.
///
/// Callers should gate on [`enabled`] first (the `event!` macro does); this
/// function re-checks and is a no-op without sinks.
///
/// Every event carries the envelope `seq` (allocated under the sink lock,
/// so file order and seq order agree), `t_ms`, `kind`, `tid` (small
/// per-thread id) and — unless the caller supplied one, as `span` events
/// do — the `span_id` of the innermost span open on the emitting thread.
pub fn emit(kind: &str, fields: Vec<(String, Json)>) {
    if !enabled() {
        return;
    }
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 5);
    pairs.push(("seq".to_string(), Json::Null)); // patched under the lock
    pairs.push(("t_ms".to_string(), Json::F64(now_ms())));
    pairs.push(("kind".to_string(), Json::Str(kind.to_string())));
    pairs.push(("tid".to_string(), Json::U64(thread_id())));
    if !fields.iter().any(|(k, _)| k == "span_id") {
        let current = crate::span::current_span_id();
        if current != 0 {
            pairs.push(("span_id".to_string(), Json::U64(current)));
        }
    }
    pairs.extend(fields);
    let mut event = Json::Obj(pairs);
    let mut g = lock_sinks();
    if let Json::Obj(pairs) = &mut event {
        pairs[0].1 = Json::U64(g.seq);
    }
    g.seq += 1;
    for s in g.sinks.iter_mut() {
        s.emit(&event);
    }
}

/// Flushes every installed sink.
pub fn flush() {
    let mut g = lock_sinks();
    for s in g.sinks.iter_mut() {
        s.flush();
    }
}

/// Pretty-printer for interactive runs: one line per event on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, event: &Json) {
        let t = event.get("t_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let kind = event.get("kind").and_then(Json::as_str).unwrap_or("?");
        let mut line = format!("[{t:>9.1}ms] {kind:<24}");
        if let Some(pairs) = event.as_object() {
            for (k, v) in pairs {
                // Envelope and span-tree bookkeeping fields stay out of the
                // human-oriented line (they are for machine consumers).
                if matches!(
                    k.as_str(),
                    "seq" | "t_ms" | "kind" | "tid" | "span_id" | "parent_id" | "start_ms"
                ) {
                    continue;
                }
                match v {
                    Json::F64(x) => line.push_str(&format!(" {k}={x:.4}")),
                    other => line.push_str(&format!(" {k}={other}")),
                }
            }
        }
        eprintln!("{line}");
    }
}

/// JSON Lines writer; one event object per line.
#[derive(Debug)]
pub struct FileSink {
    writer: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the JSONL file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for FileSink {
    fn emit(&mut self, event: &Json) {
        // Ignore I/O errors: observability must never take down the run.
        let _ = writeln!(self.writer, "{event}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A sink that appends events to a shared in-memory buffer (test helper).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    buffer: std::sync::Arc<Mutex<Vec<Json>>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clone of every event captured so far.
    pub fn events(&self) -> Vec<Json> {
        self.buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, event: &Json) {
        self.buffer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// `true` unless `SNAPEA_LOG` is set to `off`, `0`, `none`, `false`, or
/// `quiet` — the knob that silences interactive stderr progress.
#[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
pub fn stderr_wanted() -> bool {
    match std::env::var("SNAPEA_LOG") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "off" | "0" | "none" | "false" | "quiet"
        ),
        Err(_) => true,
    }
}

/// Installs the environment-selected default sinks: a [`StderrSink`] unless
/// suppressed (see [`stderr_wanted`]) and a [`FileSink`] at `SNAPEA_LOG_FILE`
/// when that variable is set. Returns `true` if any sink was installed.
pub fn init_from_env() -> bool {
    let mut any = false;
    if stderr_wanted() {
        install(Box::new(StderrSink));
        any = true;
    }
    #[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
    if let Ok(path) = std::env::var("SNAPEA_LOG_FILE") {
        if let Ok(fs) = FileSink::create(Path::new(&path)) {
            install(Box::new(fs));
            any = true;
        }
    }
    any
}

/// Emits a structured event when any sink is installed.
///
/// The first argument is the event kind (conventionally `layer/verb`, e.g.
/// `train/epoch`, `optimizer/decision`, `exec/layer`, `sim/layer`); the rest
/// are `key = value` fields where the value converts via
/// [`Json::from`](crate::json::Json). Field expressions are **not evaluated**
/// when no sink is installed.
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $val:expr )* $(,)?) => {
        if $crate::sink::enabled() {
            $crate::sink::emit($kind, vec![
                $( (stringify!($key).to_string(), $crate::json::Json::from($val)) ),*
            ]);
        }
    };
}

/// Serializes tests that install/clear global sinks (the sink list is
/// process-wide, and the test runner is parallel).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_events_and_clear_disables() {
        let _guard = test_lock();
        clear();
        assert!(!enabled());
        let mem = MemorySink::new();
        install(Box::new(mem.clone()));
        assert!(enabled());

        crate::event!("test/sink", value = 42u64, name = "abc");
        // Other tests may run concurrently and emit into the global sink
        // list, so filter down to our own kind instead of asserting counts.
        let mine: Vec<Json> = mem
            .events()
            .into_iter()
            .filter(|e| e.get("kind").and_then(Json::as_str) == Some("test/sink"))
            .collect();
        assert_eq!(mine.len(), 1);
        let e = &mine[0];
        assert_eq!(e.get("value").and_then(Json::as_u64), Some(42));
        assert_eq!(e.get("name").and_then(Json::as_str), Some("abc"));
        assert!(e.get("t_ms").and_then(Json::as_f64).is_some());
        assert!(e.get("seq").and_then(Json::as_u64).is_some());

        clear();
        assert!(!enabled());
        crate::event!("test/sink", value = 1u64);
        let after: Vec<Json> = mem
            .events()
            .into_iter()
            .filter(|e| e.get("kind").and_then(Json::as_str) == Some("test/sink"))
            .collect();
        assert_eq!(after.len(), 1, "no emission after clear()");
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!("snapea-obs-test-{}", std::process::id()));
        let path = dir.join("events.jsonl");
        let mut fs = FileSink::create(&path).expect("create file sink");
        fs.emit(&Json::obj(vec![("kind", Json::from("a"))]));
        fs.emit(&Json::obj(vec![("kind", Json::from("b"))]));
        fs.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).expect("valid json line");
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("a"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stderr_sink_formats_without_panicking() {
        let mut s = StderrSink;
        s.emit(&Json::obj(vec![
            ("seq", Json::from(0u64)),
            ("t_ms", Json::from(1.5f64)),
            ("kind", Json::from("test/fmt")),
            ("x", Json::from(3u64)),
        ]));
    }
}
