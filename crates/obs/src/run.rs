//! Run manifests: one directory per invocation under `repro-results/`,
//! holding the JSONL event log plus a `manifest.json` stamping the run with
//! its git revision, configuration, experiment ids, and elapsed time.
//!
//! ```text
//! repro-results/<run-id>/
//!   events.jsonl    # every obs event emitted during the run
//!   manifest.json   # git rev, config, experiments, elapsed, metric totals
//! ```
//!
//! The run id is `<unix-seconds>-<pid>` — unique enough for a single
//! machine without needing a randomness source.

use crate::json::Json;
use crate::metrics;
use crate::sink::{self, FileSink};
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// An open run: events are being captured to `<dir>/events.jsonl`.
/// Call [`RunHandle::finish`] to write the manifest and flush sinks.
pub struct RunHandle {
    dir: PathBuf,
    started: Instant,
    started_unix: u64,
    fields: Vec<(String, Json)>,
}

/// Reads the current git commit hash from `.git` at `repo_root` using only
/// the filesystem (the offline build environment has no `git` guarantee).
/// Returns `None` outside a git checkout.
pub fn git_rev(repo_root: &Path) -> Option<String> {
    let git = repo_root.join(".git");
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the file holds the hash directly.
        return Some(head.to_string());
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
        return Some(hash.trim().to_string());
    }
    // Ref may only exist in packed-refs.
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == refname {
                return Some(hash.trim().to_string());
            }
        }
    }
    None
}

#[allow(clippy::disallowed_methods)] // the obs layer owns the wall clock
fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The worker-pool thread count this process runs with, resolved the same
/// way as `snapea_tensor::par::threads` (`SNAPEA_THREADS`, else available
/// parallelism) — duplicated here because obs sits below the tensor crate.
/// Recorded in every manifest so perf numbers stay attributable; callers
/// that override the pool at runtime should `set("threads", ...)` instead.
pub fn env_threads() -> u64 {
    #[allow(clippy::disallowed_methods)] // sanctioned config read (R1)
    if let Ok(v) = std::env::var("SNAPEA_THREADS") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Starts a run named after the current time and pid under `results_root`
/// (conventionally `repro-results/`), installing a [`FileSink`] for
/// `events.jsonl`. Returns the handle, or `None` when the directory or the
/// event log cannot be created (observability failures never abort a run).
#[allow(clippy::disallowed_methods)] // the obs layer owns the wall clock
pub fn start(results_root: &Path) -> Option<RunHandle> {
    let started_unix = unix_now();
    let run_id = format!("{}-{}", started_unix, std::process::id());
    let dir = results_root.join(run_id);
    let events = dir.join("events.jsonl");
    let file_sink = FileSink::create(&events).ok()?;
    sink::install(Box::new(file_sink));
    Some(RunHandle {
        dir,
        started: Instant::now(),
        started_unix,
        fields: Vec::new(),
    })
}

impl RunHandle {
    /// The run directory (`repro-results/<run-id>`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the JSONL event log inside the run directory.
    pub fn events_path(&self) -> PathBuf {
        self.dir.join("events.jsonl")
    }

    /// Attaches an extra manifest field (configuration, experiment ids,
    /// dataset description, …). Later values win on duplicate keys.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
    }

    /// Writes `manifest.json` (git rev, start time, elapsed seconds, caller
    /// fields, and the final metrics snapshot) and flushes every sink.
    /// Returns the manifest path when the write succeeded.
    pub fn finish(self, repo_root: &Path) -> Option<PathBuf> {
        let elapsed_s = self.started.elapsed().as_secs_f64();
        let mut pairs: Vec<(String, Json)> = vec![
            (
                "run".to_string(),
                Json::from(
                    self.dir
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                ),
            ),
            (
                "git_rev".to_string(),
                git_rev(repo_root).map(Json::from).unwrap_or(Json::Null),
            ),
            ("started_unix".to_string(), Json::U64(self.started_unix)),
            ("elapsed_s".to_string(), Json::F64(elapsed_s)),
        ];
        if !self.fields.iter().any(|(k, _)| k == "threads") {
            pairs.push(("threads".to_string(), Json::U64(env_threads())));
        }
        pairs.extend(self.fields);
        pairs.push(("metrics".to_string(), metrics::registry().snapshot()));
        let manifest = Json::Obj(pairs);
        sink::flush();
        let path = self.dir.join("manifest.json");
        std::fs::write(&path, format!("{manifest}\n")).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_rev_reads_head_chain() {
        let dir = std::env::temp_dir().join(format!("snapea-obs-git-{}", std::process::id()));
        let git = dir.join(".git");
        std::fs::create_dir_all(git.join("refs/heads")).unwrap();
        std::fs::write(git.join("HEAD"), "ref: refs/heads/main\n").unwrap();
        std::fs::write(git.join("refs/heads/main"), "abc123\n").unwrap();
        assert_eq!(git_rev(&dir), Some("abc123".to_string()));

        // Detached HEAD.
        std::fs::write(git.join("HEAD"), "deadbeef\n").unwrap();
        assert_eq!(git_rev(&dir), Some("deadbeef".to_string()));

        // Packed refs only.
        std::fs::write(git.join("HEAD"), "ref: refs/heads/packed\n").unwrap();
        std::fs::write(git.join("packed-refs"), "cafe42 refs/heads/packed\n").unwrap();
        assert_eq!(git_rev(&dir), Some("cafe42".to_string()));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_fields_round_trip() {
        let _guard = crate::sink::test_lock();
        let root = std::env::temp_dir().join(format!("snapea-obs-run-{}", std::process::id()));
        let mut run = start(&root).expect("start run");
        run.set("experiments", Json::Arr(vec![Json::from("fig8")]));
        run.set(
            "experiments",
            Json::Arr(vec![Json::from("fig8"), Json::from("fig9")]),
        );
        let events = run.events_path();
        crate::event!("test/run", ok = true);
        let manifest_path = run.finish(&root).expect("finish run");
        crate::sink::clear();

        let manifest = crate::json::parse(&std::fs::read_to_string(&manifest_path).unwrap())
            .expect("manifest parses");
        assert!(manifest.get("elapsed_s").and_then(Json::as_f64).is_some());
        assert!(
            manifest.get("threads").and_then(Json::as_u64).unwrap_or(0) >= 1,
            "manifest records the thread count"
        );
        let exps = manifest
            .get("experiments")
            .and_then(Json::as_array)
            .expect("experiments array");
        assert_eq!(exps.len(), 2, "set() replaces duplicate keys");
        assert!(manifest.get("metrics").is_some());

        let log = std::fs::read_to_string(&events).unwrap();
        assert!(
            log.lines().any(|l| l.contains("test/run")),
            "event log captured the run event"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
