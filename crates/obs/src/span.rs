//! Hierarchical span timers.
//!
//! A span measures the wall time of a scope and knows its position in the
//! tree of enclosing spans: entering a span pushes its name onto a
//! thread-local path stack, so a span opened as `span!("optimizer/local")`
//! inside `span!("optimizer")` records the full path
//! `optimizer > optimizer/local`. Every span carries a process-unique
//! `span_id` and the `parent_id` of the span that encloses it (0 at top
//! level), so an event log can be reassembled into the exact span tree —
//! self (exclusive) time, Chrome trace export — rather than a flat list of
//! durations. On drop the span charges its elapsed time to the per-path
//! duration/count counters in the [`crate::metrics`] registry and, when a
//! sink is installed, emits a `span` event carrying the path, ids, the
//! span's start timestamp, the user-supplied detail string, and the elapsed
//! milliseconds.

use crate::metrics;
use crate::sink;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocator for process-unique span ids; id 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of `(name, span_id)` for the spans open on this thread.
    static PATH: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed scope. Create with [`enter`] or the
/// [`span!`](crate::span!) macro; the timing is recorded when it drops.
pub struct SpanGuard {
    name: String,
    detail: Option<String>,
    start: Stopwatch,
    start_ms: f64,
    depth: usize,
    span_id: u64,
    parent_id: u64,
}

/// Opens a span named `name` (use `/`-separated names such as
/// `"optimizer/layer"` — the separator is purely conventional; nesting
/// comes from scope, not from the name).
pub fn enter(name: &str) -> SpanGuard {
    enter_detail(name, None)
}

/// Opens a span with an additional free-form detail string (e.g. the layer
/// name) that is attached to the emitted event but not to the metric path.
pub fn enter_detail(name: &str, detail: Option<String>) -> SpanGuard {
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (depth, parent_id) = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let parent = p.last().map_or(0, |(_, id)| *id);
        p.push((name.to_string(), span_id));
        (p.len(), parent)
    });
    SpanGuard {
        name: name.to_string(),
        detail,
        start: Stopwatch::start(),
        start_ms: sink::now_ms(),
        depth,
        span_id,
        parent_id,
    }
}

/// The current span path on this thread, joined with `" > "` (empty string
/// at top level).
pub fn current_path() -> String {
    PATH.with(|p| {
        p.borrow()
            .iter()
            .map(|(name, _)| name.as_str())
            .collect::<Vec<_>>()
            .join(" > ")
    })
}

/// The id of the innermost span open on this thread (0 at top level).
pub fn current_span_id() -> u64 {
    PATH.with(|p| p.borrow().last().map_or(0, |(_, id)| *id))
}

impl SpanGuard {
    /// Elapsed time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed_ms()
    }

    /// This span's process-unique id.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The id of the span this one was opened inside (0 at top level).
    pub fn parent_id(&self) -> u64 {
        self.parent_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed_ms = self.start.elapsed_ms();
        let path = PATH.with(|p| {
            let mut p = p.borrow_mut();
            // Unwind to this guard's depth even if inner guards leaked
            // (e.g. due to a panic being caught above an inner span).
            p.truncate(self.depth);
            let joined = p
                .iter()
                .map(|(name, _)| name.as_str())
                .collect::<Vec<_>>()
                .join(" > ");
            p.pop();
            joined
        });
        metrics::counter(&format!("span/{}/ns", self.name)).add((elapsed_ms * 1e6) as u64);
        metrics::counter(&format!("span/{}/count", self.name)).inc();
        if sink::enabled() {
            let mut fields = vec![
                ("span_id".to_string(), crate::json::Json::U64(self.span_id)),
                (
                    "parent_id".to_string(),
                    crate::json::Json::U64(self.parent_id),
                ),
                (
                    "name".to_string(),
                    crate::json::Json::from(self.name.as_str()),
                ),
                ("path".to_string(), crate::json::Json::from(path)),
                (
                    "depth".to_string(),
                    crate::json::Json::from(self.depth as u64),
                ),
                (
                    "start_ms".to_string(),
                    crate::json::Json::F64(self.start_ms),
                ),
                ("ms".to_string(), crate::json::Json::from(elapsed_ms)),
            ];
            if let Some(d) = self.detail.take() {
                fields.push(("detail".to_string(), crate::json::Json::from(d)));
            }
            sink::emit("span", fields);
        }
    }
}

/// A plain monotonic stopwatch, for callers that want a duration number
/// rather than a recorded span (e.g. per-worker busy time, epoch wall time).
///
/// This is the sanctioned way for the rest of the workspace to read the
/// wall clock: the `snapea-lint` D2 rule bans `Instant::now()` outside
/// obs and bench, precisely so timing reads are auditable in one place
/// and never feed back into results. The span machinery itself is built on
/// it for the same reason.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    #[allow(clippy::disallowed_methods)] // the obs layer owns the wall clock
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (~584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_secs() * 1e3
    }
}

/// Opens a [`SpanGuard`] for the enclosing scope.
///
/// ```
/// # use snapea_obs::span;
/// let _s = span!("optimizer/layer");           // timed scope
/// let _t = span!("optimizer/layer", "conv1");  // with a detail string
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $detail:expr) => {
        $crate::span::enter_detail($name, Some(($detail).to_string()))
    };
}

/// Opens a [`SpanGuard`] only when a sink is installed, as an
/// `Option<SpanGuard>` — for hot paths (per-kernel, per-layer inner loops)
/// where even the metric-registry charge on drop is unwanted overhead in
/// silent runs. The metrics totals for such spans therefore only accumulate
/// while a sink is attached.
#[macro_export]
macro_rules! hot_span {
    ($name:expr) => {
        if $crate::sink::enabled() {
            Some($crate::span::enter($name))
        } else {
            None
        }
    };
    ($name:expr, $detail:expr) => {
        if $crate::sink::enabled() {
            Some($crate::span::enter_detail(
                $name,
                Some(($detail).to_string()),
            ))
        } else {
            None
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::sink::MemorySink;

    #[test]
    fn spans_accumulate_time_and_count() {
        {
            let _s = enter("test/span/outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let ns = metrics::registry()
            .counter_value("span/test/span/outer/ns")
            .unwrap_or(0);
        let count = metrics::registry()
            .counter_value("span/test/span/outer/count")
            .unwrap_or(0);
        assert!(ns >= 1_000_000, "expected >=1ms recorded, got {ns}ns");
        assert!(count >= 1);
    }

    #[test]
    fn nesting_builds_paths_from_scopes() {
        let _a = enter("test/span/parent");
        assert_eq!(current_path(), "test/span/parent");
        {
            let _b = enter("test/span/child");
            assert_eq!(current_path(), "test/span/parent > test/span/child");
        }
        assert_eq!(current_path(), "test/span/parent");
    }

    #[test]
    fn elapsed_is_monotone() {
        let s = enter("test/span/elapsed");
        let a = s.elapsed_ms();
        let b = s.elapsed_ms();
        assert!(b >= a);
    }

    #[test]
    fn span_ids_link_children_to_parents() {
        let a = enter("test/span/tree-parent");
        assert!(a.span_id() > 0);
        assert_eq!(current_span_id(), a.span_id());
        let b = enter("test/span/tree-child");
        assert_eq!(b.parent_id(), a.span_id());
        assert_ne!(b.span_id(), a.span_id());
        drop(b);
        assert_eq!(current_span_id(), a.span_id());
        drop(a);
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn span_events_carry_tree_fields() {
        let _guard = crate::sink::test_lock();
        crate::sink::clear();
        let mem = MemorySink::new();
        crate::sink::install(Box::new(mem.clone()));
        {
            let _a = enter("test/span/emit-parent");
            let _b = enter_detail("test/span/emit-child", Some("conv1".to_string()));
        }
        crate::sink::clear();
        let events: Vec<Json> = mem
            .events()
            .into_iter()
            .filter(|e| {
                e.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("test/span/emit-"))
            })
            .collect();
        assert_eq!(events.len(), 2, "both spans emitted");
        // Inner span drops (and thus emits) first.
        let child = &events[0];
        let parent = &events[1];
        assert_eq!(
            child.get("parent_id").and_then(Json::as_u64),
            parent.get("span_id").and_then(Json::as_u64),
            "child links to parent"
        );
        assert_eq!(child.get("detail").and_then(Json::as_str), Some("conv1"));
        let child_start = child
            .get("start_ms")
            .and_then(Json::as_f64)
            .expect("child start_ms");
        let parent_start = parent
            .get("start_ms")
            .and_then(Json::as_f64)
            .expect("parent start_ms");
        assert!(child_start >= parent_start, "child starts inside parent");
    }

    #[test]
    fn hot_span_is_none_without_sink() {
        let _guard = crate::sink::test_lock();
        crate::sink::clear();
        let s = crate::hot_span!("test/span/hot");
        assert!(s.is_none(), "no guard when no sink is installed");
    }
}
