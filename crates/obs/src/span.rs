//! Hierarchical span timers.
//!
//! A span measures the wall time of a scope and knows its position in the
//! tree of enclosing spans: entering a span pushes its name onto a
//! thread-local path stack, so a span opened as `span!("optimizer/local")`
//! inside `span!("optimizer")` records the full path
//! `optimizer > optimizer/local`. On drop the span charges its elapsed time
//! to the per-path duration/count counters in the [`crate::metrics`]
//! registry and, when a sink is installed, emits a `span` event carrying the
//! path, the user-supplied detail string, and the elapsed milliseconds.

use crate::metrics;
use crate::sink;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed scope. Create with [`enter`] or the
/// [`span!`](crate::span!) macro; the timing is recorded when it drops.
pub struct SpanGuard {
    name: String,
    detail: Option<String>,
    start: Instant,
    depth: usize,
}

/// Opens a span named `name` (use `/`-separated names such as
/// `"optimizer/layer"` — the separator is purely conventional; nesting
/// comes from scope, not from the name).
pub fn enter(name: &str) -> SpanGuard {
    enter_detail(name, None)
}

/// Opens a span with an additional free-form detail string (e.g. the layer
/// name) that is attached to the emitted event but not to the metric path.
#[allow(clippy::disallowed_methods)] // the obs layer owns the wall clock
pub fn enter_detail(name: &str, detail: Option<String>) -> SpanGuard {
    let depth = PATH.with(|p| {
        let mut p = p.borrow_mut();
        p.push(name.to_string());
        p.len()
    });
    SpanGuard {
        name: name.to_string(),
        detail,
        start: Instant::now(),
        depth,
    }
}

/// The current span path on this thread, joined with `" > "` (empty string
/// at top level).
pub fn current_path() -> String {
    PATH.with(|p| p.borrow().join(" > "))
}

impl SpanGuard {
    /// Elapsed time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let path = PATH.with(|p| {
            let mut p = p.borrow_mut();
            // Unwind to this guard's depth even if inner guards leaked
            // (e.g. due to a panic being caught above an inner span).
            p.truncate(self.depth);
            let joined = p.join(" > ");
            p.pop();
            joined
        });
        metrics::counter(&format!("span/{}/ns", self.name)).add(elapsed.as_nanos() as u64);
        metrics::counter(&format!("span/{}/count", self.name)).inc();
        if sink::enabled() {
            let ms = elapsed.as_secs_f64() * 1e3;
            let mut fields = vec![
                ("path".to_string(), crate::json::Json::from(path)),
                (
                    "depth".to_string(),
                    crate::json::Json::from(self.depth as u64),
                ),
                ("ms".to_string(), crate::json::Json::from(ms)),
            ];
            if let Some(d) = self.detail.take() {
                fields.push(("detail".to_string(), crate::json::Json::from(d)));
            }
            sink::emit("span", fields);
        }
    }
}

/// A plain monotonic stopwatch, for callers that want a duration number
/// rather than a recorded span (e.g. per-worker busy time, epoch wall time).
///
/// This is the sanctioned way for the rest of the workspace to read the
/// wall clock: the `snapea-lint` D2 rule bans `Instant::now()` outside
/// obs and bench, precisely so timing reads are auditable in one place
/// and never feed back into results.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    #[allow(clippy::disallowed_methods)] // the obs layer owns the wall clock
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (~584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_secs() * 1e3
    }
}

/// Opens a [`SpanGuard`] for the enclosing scope.
///
/// ```
/// # use snapea_obs::span;
/// let _s = span!("optimizer/layer");           // timed scope
/// let _t = span!("optimizer/layer", "conv1");  // with a detail string
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $detail:expr) => {
        $crate::span::enter_detail($name, Some(($detail).to_string()))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_time_and_count() {
        {
            let _s = enter("test/span/outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let ns = metrics::registry()
            .counter_value("span/test/span/outer/ns")
            .unwrap_or(0);
        let count = metrics::registry()
            .counter_value("span/test/span/outer/count")
            .unwrap_or(0);
        assert!(ns >= 1_000_000, "expected >=1ms recorded, got {ns}ns");
        assert!(count >= 1);
    }

    #[test]
    fn nesting_builds_paths_from_scopes() {
        let _a = enter("test/span/parent");
        assert_eq!(current_path(), "test/span/parent");
        {
            let _b = enter("test/span/child");
            assert_eq!(current_path(), "test/span/parent > test/span/child");
        }
        assert_eq!(current_path(), "test/span/parent");
    }

    #[test]
    fn elapsed_is_monotone() {
        let s = enter("test/span/elapsed");
        let a = s.elapsed_ms();
        let b = s.elapsed_ms();
        assert!(b >= a);
    }
}
