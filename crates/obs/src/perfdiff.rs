//! Perf regression gating: structural diff of two benchmark JSON documents
//! (`BENCH_parallel.json`, `BENCH_kernels.json`, or any file of the same
//! shape) backing the `snapea-tool perf-diff` subcommand and the check
//! script's regression gate.
//!
//! A benchmark document is an object whose array-valued top-level keys hold
//! rows of measurements; rows are identified by their string-valued fields
//! (`name`, `detail`, `shape`, …) and compared on their timing fields —
//! every numeric field ending in `_ms`, plus histogram quantiles named
//! `p50`/`p90`/`p99`. Lower is better; a row regresses when a timing field
//! grows by more than the caller's threshold percentage.
//!
//! Rows may nest one level: a field holding an array of objects (the
//! schema-2 `curve` arrays of per-thread-count points) is diffed the same
//! way, with section `benches.curve` and the parent row's identity prefixed
//! onto each point's (`conv_forward | n8 … | t4`). Deeper nesting is
//! ignored.
//!
//! Documents recorded on a machine without real parallelism carry a
//! top-level `"degraded": true` (see perfbench); comparing a degraded
//! recording against a non-degraded one would gate scaling numbers against
//! oversubscription noise, so [`diff`] refuses outright — `passed()` is
//! `false` and the reports say why — instead of producing rows.

use crate::json::Json;

/// One compared timing cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Array the row came from: a top-level section (`benches`, `kernels`,
    /// `gemm`, …) or a nested one (`benches.curve`).
    pub section: String,
    /// Identity of the row: its string fields joined with `" | "`, prefixed
    /// with the parent row's identity for nested rows.
    pub key: String,
    /// The timing field compared (e.g. `kernel_ms`).
    pub field: String,
    /// Old (baseline) value.
    pub old: f64,
    /// New (candidate) value.
    pub new: f64,
}

impl DiffRow {
    /// Percentage change, positive = slower (`(new - old) / old * 100`).
    pub fn delta_pct(&self) -> f64 {
        if self.old <= 0.0 {
            0.0
        } else {
            (self.new - self.old) / self.old * 100.0
        }
    }
}

/// The result of diffing two benchmark documents.
#[derive(Debug, Clone, Default)]
pub struct PerfDiff {
    /// Every timing cell present in both documents.
    pub rows: Vec<DiffRow>,
    /// Row identities present only in the old document.
    pub removed: Vec<String>,
    /// Row identities present only in the new document.
    pub added: Vec<String>,
    /// When set, the documents cannot be meaningfully compared (degraded
    /// recording vs non-degraded); no rows were produced and the gate fails.
    pub incompatible: Option<String>,
}

/// `true` for fields compared as timings (lower is better).
fn is_timing_field(name: &str) -> bool {
    name.ends_with("_ms") || matches!(name, "ms" | "p50" | "p90" | "p99")
}

/// A row's identity: its string-valued fields, in document order.
fn row_key(row: &Json) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if let Some(pairs) = row.as_object() {
        for (_, v) in pairs {
            if let Some(s) = v.as_str() {
                parts.push(s);
            }
        }
    }
    parts.join(" | ")
}

/// `Some(rows)` when `v` is an array of objects — a nested row table like a
/// schema-2 `curve` — and not a plain value array.
fn as_row_array(v: &Json) -> Option<&[Json]> {
    let rows = v.as_array()?;
    rows.iter().all(|r| r.as_object().is_some()).then_some(rows)
}

/// Diffs one array of rows, keyed by [`row_key`] under `key_prefix`, into
/// `out`. `nest` allows one further level of array-of-object fields.
fn diff_rows(
    out: &mut PerfDiff,
    section: &str,
    key_prefix: &str,
    old_rows: &[Json],
    new_rows: &[Json],
    nest: bool,
) {
    let full_key = |key: &str| {
        if key_prefix.is_empty() {
            key.to_string()
        } else {
            format!("{key_prefix} | {key}")
        }
    };
    for old_row in old_rows {
        let key = full_key(&row_key(old_row));
        let Some(new_row) = new_rows.iter().find(|r| full_key(&row_key(r)) == key) else {
            out.removed.push(format!("{section}: {key}"));
            continue;
        };
        let Some(fields) = old_row.as_object() else {
            continue;
        };
        for (field, v) in fields {
            if is_timing_field(field) {
                let (Some(old_ms), Some(new_ms)) =
                    (v.as_f64(), new_row.get(field).and_then(Json::as_f64))
                else {
                    continue;
                };
                out.rows.push(DiffRow {
                    section: section.to_string(),
                    key: key.clone(),
                    field: field.clone(),
                    old: old_ms,
                    new: new_ms,
                });
            } else if nest {
                let (Some(old_sub), Some(new_sub)) =
                    (as_row_array(v), new_row.get(field).and_then(as_row_array))
                else {
                    continue;
                };
                diff_rows(
                    out,
                    &format!("{section}.{field}"),
                    &key,
                    old_sub,
                    new_sub,
                    false,
                );
            }
        }
    }
    for new_row in new_rows {
        let key = full_key(&row_key(new_row));
        if !old_rows.iter().any(|r| full_key(&row_key(r)) == key) {
            out.added.push(format!("{section}: {key}"));
        }
    }
}

/// Whether a document was recorded degraded (`available_parallelism == 1`);
/// absent means `false` (schema-1 documents predate the flag).
fn is_degraded(doc: &Json) -> bool {
    doc.get("degraded").and_then(Json::as_bool).unwrap_or(false)
}

/// Diffs two benchmark documents (see the module docs for the shape).
pub fn diff(old: &Json, new: &Json) -> PerfDiff {
    let mut out = PerfDiff::default();
    let (old_deg, new_deg) = (is_degraded(old), is_degraded(new));
    if old_deg != new_deg {
        out.incompatible = Some(format!(
            "refusing to compare: old recorded with degraded={old_deg}, new with \
             degraded={new_deg} (one machine had available_parallelism == 1 — its \
             curves measure oversubscription overhead, not scaling); re-record both \
             on comparable machines"
        ));
        return out;
    }
    let empty: &[(String, Json)] = &[];
    let old_pairs = old.as_object().unwrap_or(empty);
    for (section, old_val) in old_pairs {
        let Some(old_rows) = old_val.as_array() else {
            continue;
        };
        let new_rows = new
            .get(section)
            .and_then(Json::as_array)
            .unwrap_or(&[] as &[Json]);
        diff_rows(&mut out, section, "", old_rows, new_rows, true);
    }
    out
}

impl PerfDiff {
    /// Rows slower by more than `max_regress_pct` percent.
    pub fn regressions(&self, max_regress_pct: f64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.delta_pct() > max_regress_pct)
            .collect()
    }

    /// `true` when the documents were comparable and no timing regressed
    /// past the threshold.
    pub fn passed(&self, max_regress_pct: f64) -> bool {
        self.incompatible.is_none() && self.regressions(max_regress_pct).is_empty()
    }

    /// JSON form: every compared cell with its delta, plus the verdict.
    pub fn to_json(&self, max_regress_pct: f64) -> Json {
        let rows = Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("section", Json::from(r.section.as_str())),
                        ("key", Json::from(r.key.as_str())),
                        ("field", Json::from(r.field.as_str())),
                        ("old", Json::F64(r.old)),
                        ("new", Json::F64(r.new)),
                        ("delta_pct", Json::F64(r.delta_pct())),
                        ("regressed", Json::Bool(r.delta_pct() > max_regress_pct)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("max_regress_pct", Json::F64(max_regress_pct)),
            ("compared", Json::U64(self.rows.len() as u64)),
            (
                "regressions",
                Json::U64(self.regressions(max_regress_pct).len() as u64),
            ),
            (
                "incompatible",
                self.incompatible
                    .as_deref()
                    .map(Json::from)
                    .unwrap_or(Json::Null),
            ),
            (
                "removed",
                Json::Arr(
                    self.removed
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            ),
            (
                "added",
                Json::Arr(self.added.iter().map(|s| Json::from(s.as_str())).collect()),
            ),
            ("passed", Json::Bool(self.passed(max_regress_pct))),
            ("rows", rows),
        ])
    }

    /// Human-readable table, worst regression first.
    pub fn render_text(&self, max_regress_pct: f64) -> String {
        if let Some(why) = &self.incompatible {
            return format!("incompatible documents: {why}\n0 cell(s) compared: FAIL\n");
        }
        let mut out = String::new();
        let mut rows: Vec<&DiffRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            b.delta_pct()
                .partial_cmp(&a.delta_pct())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out.push_str(&format!(
            "{:<10} {:<44} {:<14} {:>10} {:>10} {:>8}\n",
            "section", "row", "field", "old ms", "new ms", "delta"
        ));
        for r in &rows {
            let mark = if r.delta_pct() > max_regress_pct {
                "  << REGRESSION"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<10} {:<44} {:<14} {:>10.3} {:>10.3} {:>+7.1}%{}\n",
                r.section,
                r.key,
                r.field,
                r.old,
                r.new,
                r.delta_pct(),
                mark
            ));
        }
        for k in &self.removed {
            out.push_str(&format!("removed: {k}\n"));
        }
        for k in &self.added {
            out.push_str(&format!("added:   {k}\n"));
        }
        let n = self.regressions(max_regress_pct).len();
        out.push_str(&format!(
            "{} cell(s) compared, {} regression(s) above {:.1}%: {}\n",
            self.rows.len(),
            n,
            max_regress_pct,
            if n == 0 { "PASS" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn bench_doc(kernel_ms: f64) -> Json {
        parse(&format!(
            r#"{{"generated_by":"perfbench","reps":5,
                "kernels":[
                  {{"name":"executor_exact","detail":"n8","baseline_ms":56.0,"kernel_ms":{kernel_ms},"speedup":1.5,"bit_identical":true}},
                  {{"name":"matmul","detail":"96x288","baseline_ms":2.5,"kernel_ms":1.5,"speedup":1.7,"bit_identical":true}}
                ]}}"#
        ))
        .unwrap()
    }

    /// Schema-2 shaped document: a bench row with a nested scaling curve.
    fn curve_doc(degraded: bool, t4_ms: f64) -> Json {
        parse(&format!(
            r#"{{"generated_by":"perfbench","schema":2,"degraded":{degraded},
                "benches":[
                  {{"name":"conv_forward","detail":"n8 k3","serial_ms":40.0,"curve":[
                    {{"label":"t1","threads":1,"ms":40.0,"speedup":1.0,"bit_identical":true}},
                    {{"label":"t4","threads":4,"ms":{t4_ms},"speedup":3.3,"bit_identical":true}}
                  ]}}
                ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let d = diff(&bench_doc(37.0), &bench_doc(37.0));
        assert!(d.passed(10.0));
        assert!(d.regressions(0.0).is_empty(), "zero delta everywhere");
        // baseline_ms + kernel_ms on both rows = 4 compared cells.
        assert_eq!(d.rows.len(), 4);
        assert!(d.removed.is_empty() && d.added.is_empty());
    }

    #[test]
    fn planted_regression_fails_the_gate() {
        let d = diff(&bench_doc(37.0), &bench_doc(37.0 * 1.2));
        assert!(!d.passed(10.0), "20% slower must fail a 10% gate");
        let regs = d.regressions(10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "kernel_ms");
        assert!((regs[0].delta_pct() - 20.0).abs() < 1e-9);
        // A looser gate tolerates it.
        assert!(d.passed(25.0));
        let text = d.render_text(10.0);
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn speedups_never_fail() {
        let d = diff(&bench_doc(37.0), &bench_doc(20.0));
        assert!(d.passed(10.0));
        assert!(d.render_text(10.0).contains("PASS"));
    }

    #[test]
    fn added_and_removed_rows_are_reported() {
        let old = bench_doc(37.0);
        let new = parse(
            r#"{"kernels":[
                {"name":"executor_exact","detail":"n8","baseline_ms":56.0,"kernel_ms":37.0},
                {"name":"brand_new","detail":"x","kernel_ms":1.0}
            ]}"#,
        )
        .unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.removed, vec!["kernels: matmul | 96x288".to_string()]);
        assert_eq!(d.added, vec!["kernels: brand_new | x".to_string()]);
        // Missing rows do not crash the gate; they are surfaced instead.
        assert!(d.passed(10.0));
    }

    #[test]
    fn quantile_fields_are_compared() {
        let old = parse(r#"{"hist":[{"name":"k","p50":1.0,"p99":2.0,"count":10}]}"#).unwrap();
        let new = parse(r#"{"hist":[{"name":"k","p50":1.0,"p99":3.0,"count":12}]}"#).unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.rows.len(), 2, "p50 and p99 compared, count ignored");
        assert!(!d.passed(10.0), "p99 rose 50%");
    }

    #[test]
    fn nested_curve_points_are_compared() {
        let d = diff(&curve_doc(false, 12.0), &curve_doc(false, 12.0));
        // serial_ms on the parent + ms on each of the two curve points.
        assert_eq!(d.rows.len(), 3);
        let t4 = d
            .rows
            .iter()
            .find(|r| r.key.ends_with("| t4"))
            .expect("t4 point compared");
        assert_eq!(t4.section, "benches.curve");
        assert_eq!(t4.key, "conv_forward | n8 k3 | t4");
        assert_eq!(t4.field, "ms");
        assert!(d.passed(10.0));
    }

    #[test]
    fn regression_in_a_curve_point_fails_the_gate() {
        let d = diff(&curve_doc(false, 12.0), &curve_doc(false, 18.0));
        assert!(!d.passed(10.0), "t4 point 50% slower must fail");
        let regs = d.regressions(10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].section, "benches.curve");
        assert_eq!(regs[0].key, "conv_forward | n8 k3 | t4");
    }

    #[test]
    fn degraded_mismatch_is_refused() {
        for (old_deg, new_deg) in [(true, false), (false, true)] {
            let d = diff(&curve_doc(old_deg, 12.0), &curve_doc(new_deg, 12.0));
            assert!(d.incompatible.is_some(), "mismatch must refuse");
            assert!(d.rows.is_empty(), "no cells compared on refusal");
            assert!(!d.passed(1e9), "refusal fails regardless of threshold");
            let text = d.render_text(10.0);
            assert!(text.contains("refusing to compare"), "{text}");
            assert!(text.contains("FAIL"), "{text}");
            let j = d.to_json(10.0);
            assert_eq!(j.get("passed").and_then(Json::as_bool), Some(false));
            assert!(j.get("incompatible").and_then(Json::as_str).is_some());
        }
        // Matching flags — even both degraded — compare normally.
        let d = diff(&curve_doc(true, 12.0), &curve_doc(true, 12.0));
        assert!(d.incompatible.is_none());
        assert!(d.passed(10.0));
    }

    /// The refusal is document-level, so the kernels report
    /// (`BENCH_kernels.json`) is covered too: its single-thread timings are
    /// just as machine-bound as the curves.
    #[test]
    fn degraded_mismatch_is_refused_for_kernels_documents() {
        let kernels_doc = |degraded: bool| {
            parse(&format!(
                r#"{{"generated_by":"perfbench --kernels","schema":2,"degraded":{degraded},
                    "kernels":[
                      {{"name":"lane_dot","detail":"512 windows","baseline_ms":3.0,"kernel_ms":1.5,"speedup":2.0,"bit_identical":true}}
                    ]}}"#
            ))
            .unwrap()
        };
        let d = diff(&kernels_doc(true), &kernels_doc(false));
        assert!(
            d.incompatible.is_some(),
            "kernels-shaped mismatch must refuse"
        );
        assert!(d.rows.is_empty());
        assert!(!d.passed(1e9));
        // Matching flags compare the kernel cells normally.
        let d = diff(&kernels_doc(true), &kernels_doc(true));
        assert!(d.incompatible.is_none());
        assert_eq!(d.rows.len(), 2, "baseline_ms + kernel_ms compared");
        assert!(d.passed(10.0));
    }

    #[test]
    fn json_report_round_trips() {
        let d = diff(&bench_doc(10.0), &bench_doc(12.0));
        let j = d.to_json(10.0);
        assert_eq!(j.get("passed").and_then(Json::as_bool), Some(false));
        let back = parse(&j.to_string()).unwrap();
        assert_eq!(back.get("compared").and_then(Json::as_u64), Some(4));
        assert!(back.get("incompatible").is_some());
    }
}
