//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are **always on**: increments are relaxed atomic operations with
//! no branching on sink state and no allocation, so the executor's hot path
//! can charge its MAC counters unconditionally (the <2% overhead budget of
//! the bench gate). Instruments are interned once by name and live for the
//! program's lifetime; hot call sites should cache the returned `&'static`
//! reference (e.g. in a `OnceLock`) instead of re-looking it up.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` (relaxed).
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge (relaxed).
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, caller-supplied bucket upper bounds.
///
/// `bounds` are inclusive upper edges; one implicit overflow bucket catches
/// everything above the last bound. The sum is accumulated in nanos-style
/// fixed point (×1e6) so it stays an atomic integer.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observations, scaled by 1e6 and rounded.
    sum_micro: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds (must be
    /// sorted ascending).
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics, no allocation).
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = (v.max(0.0) * 1e6).round() as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// Number of sub-buckets per octave in a [`LogHistogram`] (top 3 mantissa
/// bits → 8 log-spaced buckets per power of two, ~9% relative resolution).
const LOG_SUBBUCKETS: u64 = 8;
/// Lowest representable exponent: values below `2^-32` land in the
/// underflow bucket (index 0, together with zero/negative/non-finite).
const LOG_EXP_MIN: i64 = 1023 - 32;
/// Number of octaves covered; values at or above `2^(96-32)` clamp into the
/// top bucket. Durations in milliseconds live comfortably inside this span.
const LOG_OCTAVES: i64 = 96;
/// Total bucket count: one underflow bucket plus the log-spaced ones.
const LOG_BUCKETS: usize = 1 + (LOG_OCTAVES as usize) * (LOG_SUBBUCKETS as usize);

/// Maps a value to its [`LogHistogram`] bucket index. Pure function of the
/// f64 bit pattern — no floating-point comparisons — so two histograms built
/// from the same samples are bit-identical regardless of accumulation order.
fn log_bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let sub = ((bits >> 49) & 0x7) as i64;
    let raw = (exp - LOG_EXP_MIN) * LOG_SUBBUCKETS as i64 + sub;
    (raw.clamp(0, LOG_BUCKETS as i64 - 2) + 1) as usize
}

/// The lower edge of a log bucket (0 for the underflow bucket).
fn log_bucket_lower(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let raw = (idx - 1) as i64;
    let exp = raw / LOG_SUBBUCKETS as i64 + LOG_EXP_MIN;
    let sub = (raw % LOG_SUBBUCKETS as i64) as u64;
    f64::from_bits(((exp as u64) << 52) | (sub << 49))
}

/// A representative value for a log bucket: the midpoint of its edges.
fn log_bucket_mid(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let lo = log_bucket_lower(idx);
    let hi = if idx + 1 < LOG_BUCKETS {
        log_bucket_lower(idx + 1)
    } else {
        lo * 2.0
    };
    lo + (hi - lo) * 0.5
}

/// A log-bucketed histogram: fixed geometric buckets derived from the f64
/// bit pattern (8 per octave, ~9% resolution), cheap relaxed-atomic
/// recording, and **mergeable** snapshots — two histograms of the same shape
/// merge by per-bucket count addition, so per-thread or per-run aggregates
/// combine without losing quantile fidelity beyond the bucket resolution.
#[derive(Debug)]
pub struct LogHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, scaled by 1e6 and rounded (fixed point keeps it
    /// an atomic integer; merge stays exact).
    sum_micro: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..LOG_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics, no allocation).
    #[inline]
    pub fn record(&self, v: f64) {
        self.counts[log_bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = (v.max(0.0) * 1e6).round() as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// A point-in-time copy suitable for merging and quantile queries.
    pub fn snapshot(&self) -> LogHistogramSnapshot {
        LogHistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micro: self.sum_micro.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LogHistogram`]: merge, quantiles, JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_micro: u64,
}

impl Default for LogHistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl LogHistogramSnapshot {
    /// An empty snapshot (identity element of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; LOG_BUCKETS],
            count: 0,
            sum_micro: 0,
        }
    }

    /// Builds a snapshot directly from samples (reference path for tests).
    pub fn from_samples(samples: &[f64]) -> Self {
        let h = LogHistogram::new();
        for &v in samples {
            h.record(v);
        }
        h.snapshot()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (clamped at 0 per sample, like recording).
    pub fn sum(&self) -> f64 {
        self.sum_micro as f64 / 1e6
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Merges another snapshot in: per-bucket count addition. Exact (no
    /// re-bucketing error), associative, and commutative.
    pub fn merge(&mut self, other: &LogHistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micro += other.sum_micro;
    }

    /// The nearest-rank `q`-quantile (`0 < q <= 1`), reported as the
    /// midpoint of the bucket holding that rank — within one bucket width
    /// (~±9% relative) of the true sample quantile. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return log_bucket_mid(idx);
            }
        }
        log_bucket_mid(LOG_BUCKETS - 1)
    }

    /// The bucket index the nearest-rank `q`-quantile falls in (test hook:
    /// lets properties compare against a naive sorted reference exactly).
    pub fn quantile_bucket(&self, q: f64) -> usize {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return idx;
            }
        }
        LOG_BUCKETS - 1
    }

    /// The bucket a raw value maps to (test hook, see
    /// [`quantile_bucket`](Self::quantile_bucket)).
    pub fn bucket_of(v: f64) -> usize {
        log_bucket_index(v)
    }

    /// JSON form: `{count, sum, mean, p50, p90, p99}` plus the sparse
    /// non-zero buckets (`buckets: {"<idx>": n, ...}`) so snapshots written
    /// to disk can be re-read and merged.
    pub fn to_json(&self) -> Json {
        let buckets = Json::Obj(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i.to_string(), Json::U64(c)))
                .collect(),
        );
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::F64(self.sum())),
            ("mean", Json::F64(self.mean())),
            ("p50", Json::F64(self.quantile(0.50))),
            ("p90", Json::F64(self.quantile(0.90))),
            ("p99", Json::F64(self.quantile(0.99))),
            ("buckets", buckets),
        ])
    }

    /// Parses the [`to_json`](Self::to_json) form back into a snapshot.
    /// Returns `None` on a malformed document (wrong shape, bucket index out
    /// of range).
    pub fn from_json(j: &Json) -> Option<Self> {
        let mut snap = Self::empty();
        snap.count = j.get("count").and_then(Json::as_u64)?;
        snap.sum_micro = (j.get("sum").and_then(Json::as_f64)? * 1e6).round() as u64;
        let buckets = j.get("buckets")?;
        for (k, v) in buckets.as_object()? {
            let idx: usize = k.parse().ok()?;
            if idx >= LOG_BUCKETS {
                return None;
            }
            snap.counts[idx] = v.as_u64()?;
        }
        Some(snap)
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
    log_histograms: BTreeMap<String, &'static LogHistogram>,
}

/// The process-wide registry of named instruments.
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    fn new() -> Self {
        Self {
            inner: Mutex::new(Instruments::default()),
        }
    }

    /// Locks the instrument tables, recovering from poisoning: interning
    /// only inserts leaked `'static` entries, so a panicked holder cannot
    /// leave the maps in a broken state, and metrics must never take the
    /// process down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Instruments> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Interns (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut g = self.lock();
        if let Some(c) = g.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::default()));
        g.counters.insert(name.to_string(), c);
        c
    }

    /// Interns (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut g = self.lock();
        if let Some(v) = g.gauges.get(name) {
            return v;
        }
        let v: &'static Gauge = Box::leak(Box::new(Gauge::default()));
        g.gauges.insert(name.to_string(), v);
        v
    }

    /// Interns (or retrieves) the histogram `name` with `bounds` (bounds are
    /// fixed at first registration).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> &'static Histogram {
        let mut g = self.lock();
        if let Some(h) = g.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(bounds.to_vec())));
        g.histograms.insert(name.to_string(), h);
        h
    }

    /// Interns (or retrieves) the log-bucketed histogram `name`.
    pub fn log_histogram(&self, name: &str) -> &'static LogHistogram {
        let mut g = self.lock();
        if let Some(h) = g.log_histograms.get(name) {
            return h;
        }
        let h: &'static LogHistogram = Box::leak(Box::new(LogHistogram::new()));
        g.log_histograms.insert(name.to_string(), h);
        h
    }

    /// Snapshot of every instrument as a JSON object (counters and gauges as
    /// scalars, fixed-bucket histograms as `{count, sum, mean}`, log
    /// histograms as their full mergeable form with p50/p90/p99).
    pub fn snapshot(&self) -> Json {
        let g = self.lock();
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for (name, c) in &g.counters {
            pairs.push((name.clone(), Json::U64(c.get())));
        }
        for (name, v) in &g.gauges {
            pairs.push((name.clone(), Json::F64(v.get())));
        }
        for (name, h) in &g.histograms {
            pairs.push((
                name.clone(),
                Json::obj(vec![
                    ("count", Json::U64(h.count())),
                    ("sum", Json::F64(h.sum())),
                    ("mean", Json::F64(h.mean())),
                ]),
            ));
        }
        for (name, h) in &g.log_histograms {
            pairs.push((name.clone(), h.snapshot().to_json()));
        }
        Json::Obj(pairs)
    }

    /// Resets nothing — instruments are monotonic for the process lifetime —
    /// but reads a single counter for tests and reports.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let g = self.lock();
        g.counters.get(name).map(|c| c.get())
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &str) -> &'static Gauge {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name, bounds)`.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    registry().histogram(name, bounds)
}

/// Shorthand for `registry().log_histogram(name)`.
pub fn log_histogram(name: &str) -> &'static LogHistogram {
    registry().log_histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let a = counter("test/metrics/a");
        let b = counter("test/metrics/a");
        assert!(std::ptr::eq(a, b), "same name interns to same instrument");
        let before = a.get();
        a.add(3);
        b.inc();
        assert_eq!(a.get(), before + 4);
    }

    #[test]
    fn gauges_hold_last_value() {
        let g = gauge("test/metrics/g");
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        g.set(-2.0);
        assert_eq!(g.get(), -2.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 0.5] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.0).abs() < 1e-3);
        assert!((h.mean() - 111.2).abs() < 1e-3);
    }

    #[test]
    fn snapshot_contains_registered_instruments() {
        counter("test/metrics/snap").add(7);
        gauge("test/metrics/snapg").set(0.5);
        histogram("test/metrics/snaph", &[1.0]).observe(0.25);
        let snap = registry().snapshot();
        assert!(
            snap.get("test/metrics/snap")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 7
        );
        assert_eq!(
            snap.get("test/metrics/snapg").and_then(Json::as_f64),
            Some(0.5)
        );
        assert!(snap
            .get("test/metrics/snaph")
            .and_then(|h| h.get("count"))
            .is_some());
    }

    #[test]
    fn log_histogram_buckets_are_monotone_and_bounded() {
        let mut prev = 0;
        for &v in &[
            1e-12, 1e-9, 0.001, 0.01, 0.1, 0.5, 1.0, 1.1, 2.0, 10.0, 1e3, 1e6, 1e12, 1e30,
        ] {
            let b = log_bucket_index(v);
            assert!(b >= prev, "bucketing is monotone in value ({v})");
            assert!(b < LOG_BUCKETS);
            prev = b;
        }
        assert_eq!(log_bucket_index(0.0), 0);
        assert_eq!(log_bucket_index(-3.0), 0);
        assert_eq!(log_bucket_index(f64::NAN), 0);
        // A bucket's representative maps back into the same bucket.
        for idx in 1..LOG_BUCKETS - 1 {
            assert_eq!(log_bucket_index(log_bucket_mid(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn log_histogram_quantiles_and_merge() {
        let h = LogHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.quantile(0.50);
        assert!((p50 / 50.0 - 1.0).abs() < 0.10, "p50 ~ 50, got {p50}");
        let p99 = s.quantile(0.99);
        assert!((p99 / 99.0 - 1.0).abs() < 0.10, "p99 ~ 99, got {p99}");

        // Merge equals the histogram of the concatenation, exactly.
        let a = LogHistogramSnapshot::from_samples(&[1.0, 2.0, 3.0]);
        let b = LogHistogramSnapshot::from_samples(&[10.0, 20.0]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(
            m,
            LogHistogramSnapshot::from_samples(&[1.0, 2.0, 3.0, 10.0, 20.0])
        );
    }

    #[test]
    fn log_histogram_json_round_trips() {
        let s = LogHistogramSnapshot::from_samples(&[0.25, 1.5, 1.5, 800.0, 0.0]);
        let j = s.to_json();
        assert!(j.get("p50").and_then(Json::as_f64).is_some());
        let back = LogHistogramSnapshot::from_json(&j).expect("parses back");
        assert_eq!(back, s);
        assert!(LogHistogramSnapshot::from_json(&Json::Null).is_none());
    }

    #[test]
    fn log_histogram_interns_in_registry() {
        let a = log_histogram("test/metrics/lh");
        let b = log_histogram("test/metrics/lh");
        assert!(std::ptr::eq(a, b));
        a.record(2.5);
        let snap = registry().snapshot();
        assert!(
            snap.get("test/metrics/lh")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 1
        );
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = counter("test/metrics/threads");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), before + 4000);
    }
}
