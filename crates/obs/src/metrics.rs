//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are **always on**: increments are relaxed atomic operations with
//! no branching on sink state and no allocation, so the executor's hot path
//! can charge its MAC counters unconditionally (the <2% overhead budget of
//! the bench gate). Instruments are interned once by name and live for the
//! program's lifetime; hot call sites should cache the returned `&'static`
//! reference (e.g. in a `OnceLock`) instead of re-looking it up.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` (relaxed).
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge (relaxed).
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, caller-supplied bucket upper bounds.
///
/// `bounds` are inclusive upper edges; one implicit overflow bucket catches
/// everything above the last bound. The sum is accumulated in nanos-style
/// fixed point (×1e6) so it stays an atomic integer.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observations, scaled by 1e6 and rounded.
    sum_micro: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds (must be
    /// sorted ascending).
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics, no allocation).
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micro = (v.max(0.0) * 1e6).round() as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

/// The process-wide registry of named instruments.
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    fn new() -> Self {
        Self {
            inner: Mutex::new(Instruments::default()),
        }
    }

    /// Locks the instrument tables, recovering from poisoning: interning
    /// only inserts leaked `'static` entries, so a panicked holder cannot
    /// leave the maps in a broken state, and metrics must never take the
    /// process down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Instruments> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Interns (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut g = self.lock();
        if let Some(c) = g.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::default()));
        g.counters.insert(name.to_string(), c);
        c
    }

    /// Interns (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut g = self.lock();
        if let Some(v) = g.gauges.get(name) {
            return v;
        }
        let v: &'static Gauge = Box::leak(Box::new(Gauge::default()));
        g.gauges.insert(name.to_string(), v);
        v
    }

    /// Interns (or retrieves) the histogram `name` with `bounds` (bounds are
    /// fixed at first registration).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> &'static Histogram {
        let mut g = self.lock();
        if let Some(h) = g.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(bounds.to_vec())));
        g.histograms.insert(name.to_string(), h);
        h
    }

    /// Snapshot of every instrument as a JSON object (counters and gauges as
    /// scalars, histograms as `{count, sum, mean}`).
    pub fn snapshot(&self) -> Json {
        let g = self.lock();
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for (name, c) in &g.counters {
            pairs.push((name.clone(), Json::U64(c.get())));
        }
        for (name, v) in &g.gauges {
            pairs.push((name.clone(), Json::F64(v.get())));
        }
        for (name, h) in &g.histograms {
            pairs.push((
                name.clone(),
                Json::obj(vec![
                    ("count", Json::U64(h.count())),
                    ("sum", Json::F64(h.sum())),
                    ("mean", Json::F64(h.mean())),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// Resets nothing — instruments are monotonic for the process lifetime —
    /// but reads a single counter for tests and reports.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let g = self.lock();
        g.counters.get(name).map(|c| c.get())
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &str) -> &'static Gauge {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name, bounds)`.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    registry().histogram(name, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let a = counter("test/metrics/a");
        let b = counter("test/metrics/a");
        assert!(std::ptr::eq(a, b), "same name interns to same instrument");
        let before = a.get();
        a.add(3);
        b.inc();
        assert_eq!(a.get(), before + 4);
    }

    #[test]
    fn gauges_hold_last_value() {
        let g = gauge("test/metrics/g");
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        g.set(-2.0);
        assert_eq!(g.get(), -2.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 0.5] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.0).abs() < 1e-3);
        assert!((h.mean() - 111.2).abs() < 1e-3);
    }

    #[test]
    fn snapshot_contains_registered_instruments() {
        counter("test/metrics/snap").add(7);
        gauge("test/metrics/snapg").set(0.5);
        histogram("test/metrics/snaph", &[1.0]).observe(0.25);
        let snap = registry().snapshot();
        assert!(
            snap.get("test/metrics/snap")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 7
        );
        assert_eq!(
            snap.get("test/metrics/snapg").and_then(Json::as_f64),
            Some(0.5)
        );
        assert!(snap
            .get("test/metrics/snaph")
            .and_then(|h| h.get("count"))
            .is_some());
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = counter("test/metrics/threads");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), before + 4000);
    }
}
