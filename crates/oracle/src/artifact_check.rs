//! The artifact battery: round-trip and corruption fuzzing for the
//! compiled-model artifact format (`snapea::artifact`).
//!
//! Per case (derived from one replayable seed, same generator as the
//! differential harness) the battery asserts:
//!
//! 1. **Round trip** — `compile → serialize → deserialize` reproduces the
//!    bytes canonically (re-serialization is byte-exact) and the loaded
//!    model's forward pass is **bit-identical** to both the freshly
//!    compiled model's and `SpecNet`'s on the case's input batch;
//! 2. **Corruption** — a deterministic mutator (bit flips, truncations,
//!    region swaps) damages the valid bytes; every mutation must be
//!    rejected with a typed [`ArtifactError`] — never a panic, never an
//!    accepted-but-corrupt load.
//!
//! [`ArtifactCheckOptions::inject_load_bug`] loads mutated bytes with the
//! LAYERS-section checksum verification skipped — a deliberately planted
//! bug. The battery must then observe at least one corrupted artifact load
//! successfully (the semantic cross-checks catch most damage, but in-bounds
//! flips inside the plan tables are exactly the silent corruption the
//! checksum exists to stop), proving the battery detects a weakened loader.

use crate::gen::CaseConfig;
use crate::rng::{mix, OracleRng};
use snapea::artifact::{ArtifactError, CompiledModel, LoadOptions};
use snapea::params::NetworkParams;
use snapea::spec_net::SpecNet;
use snapea_nn::graph::{Graph, GraphBuilder};
use snapea_obs::Json;
use snapea_tensor::q16::Q16Format;
use snapea_tensor::Tensor4;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Artifact-battery knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArtifactCheckOptions {
    /// Load mutated bytes with the LAYERS checksum verification skipped —
    /// the planted loader bug the battery must catch.
    pub inject_load_bug: bool,
}

/// Mutations applied to each case's valid artifact bytes.
const MUTATIONS_PER_CASE: usize = 3;

/// One byte-level mutation of a valid artifact, rendered for replay.
#[derive(Debug, Clone)]
enum Mutation {
    BitFlip { pos: usize, bit: u32 },
    Truncate { keep: usize },
    RegionSwap { a: usize, b: usize, len: usize },
}

impl Mutation {
    fn describe(&self) -> String {
        match self {
            Mutation::BitFlip { pos, bit } => format!("bit-flip byte {pos} bit {bit}"),
            Mutation::Truncate { keep } => format!("truncate to {keep} byte(s)"),
            Mutation::RegionSwap { a, b, len } => {
                format!("swap {len}-byte regions at {a} and {b}")
            }
        }
    }

    /// Applies the mutation; returns `None` if it cannot change the bytes
    /// (degenerate input or identical swapped regions).
    fn apply(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let mut out = bytes.to_vec();
        match *self {
            Mutation::BitFlip { pos, bit } => {
                let b = out.get_mut(pos)?;
                *b ^= 1u8 << (bit % 8);
            }
            Mutation::Truncate { keep } => {
                if keep >= out.len() {
                    return None;
                }
                out.truncate(keep);
            }
            Mutation::RegionSwap { a, b, len } => {
                if a.checked_add(len)? > out.len() || b.checked_add(len)? > out.len() {
                    return None;
                }
                for i in 0..len {
                    out.swap(a + i, b + i);
                }
            }
        }
        if out == bytes {
            None
        } else {
            Some(out)
        }
    }
}

/// Draws a mutation from the case's RNG sub-stream.
fn draw_mutation(r: &mut OracleRng, len: usize) -> Mutation {
    match r.range(0, 2) {
        0 => Mutation::BitFlip {
            pos: r.range(0, len - 1),
            bit: r.range(0, 7) as u32,
        },
        1 => Mutation::Truncate {
            keep: r.range(0, len - 1),
        },
        _ => {
            let l = r.range(1, 16.min(len));
            Mutation::RegionSwap {
                a: r.range(0, len - l),
                b: r.range(0, len - l),
                len: l,
            }
        }
    }
}

/// A failed artifact case, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct ArtifactFailure {
    /// The case seed (replay with
    /// `snapea-tool selfcheck --artifact --replay <seed>`).
    pub seed: u64,
    /// The generated configuration, rendered.
    pub config: String,
    /// One message per failed check.
    pub messages: Vec<String>,
}

/// Outcome of one artifact case.
#[derive(Debug, Clone)]
pub struct ArtifactCaseOutcome {
    /// The case seed.
    pub seed: u64,
    /// Checks performed (round-trip comparisons + mutations).
    pub checks: u64,
    /// Mutations applied.
    pub mutations: u64,
    /// Rejection counts keyed by [`ArtifactError::kind`].
    pub rejections: BTreeMap<&'static str, u64>,
    /// The failure, if any check tripped.
    pub failure: Option<ArtifactFailure>,
}

/// Aggregate result of an artifact battery run.
#[derive(Debug, Clone)]
pub struct ArtifactCheckReport {
    /// The run seed cases were derived from.
    pub run_seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Checks performed.
    pub checks: u64,
    /// Mutations applied across all cases.
    pub mutations: u64,
    /// Rejection counts keyed by [`ArtifactError::kind`].
    pub rejections: BTreeMap<&'static str, u64>,
    /// Every failed case.
    pub failures: Vec<ArtifactFailure>,
}

impl ArtifactCheckReport {
    /// Whether every check of every case passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable report; failures include seed, config, and a replay
    /// command line.
    pub fn render_text(&self) -> String {
        let kinds: Vec<String> = self
            .rejections
            .iter()
            .map(|(k, n)| format!("{k}:{n}"))
            .collect();
        let mut s = format!(
            "artifact battery seed={}: {} cases, {} checks, {} mutation(s) \
             rejected as [{}], {} failure(s)",
            self.run_seed,
            self.cases,
            self.checks,
            self.mutations,
            kinds.join(" "),
            self.failures.len(),
        );
        for f in &self.failures {
            let _ = write!(
                s,
                "\nFAILED case seed={:#018x}\n  config: {}",
                f.seed, f.config
            );
            for m in &f.messages {
                let _ = write!(s, "\n  - {m}");
            }
            let _ = write!(
                s,
                "\n  replay: snapea-tool selfcheck --artifact --replay {:#018x}",
                f.seed
            );
        }
        s
    }

    /// Structured report (the CLI's `--json` payload).
    pub fn to_json(&self) -> Json {
        let rejections = Json::obj(
            self.rejections
                .iter()
                .map(|(k, n)| (*k, Json::U64(*n)))
                .collect(),
        );
        let failures: Vec<Json> = self
            .failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("seed", Json::Str(format!("{:#018x}", f.seed))),
                    ("config", Json::Str(f.config.clone())),
                    (
                        "messages",
                        Json::Arr(f.messages.iter().map(|m| Json::Str(m.clone())).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("seed", Json::U64(self.run_seed)),
            ("cases", Json::U64(self.cases)),
            ("checks", Json::U64(self.checks)),
            ("mutations", Json::U64(self.mutations)),
            ("rejections", rejections),
            ("failed", Json::U64(self.failures.len() as u64)),
            ("passed", Json::Bool(self.passed())),
            ("failures", Json::Arr(failures)),
        ])
    }
}

/// Builds the case's single-conv model: `input → conv`.
fn case_model(cfg: &CaseConfig) -> (Graph, NetworkParams, Tensor4) {
    let (conv, input) = cfg.build();
    let mut b = GraphBuilder::new();
    let x = b.input();
    let _ = b.conv_layer("conv", x, conv);
    let graph = b.build();
    let mut params = NetworkParams::new();
    params.set(1, cfg.params());
    (graph, params, input)
}

fn bit_compare(label: &str, got: &[Tensor4], want: &[Tensor4], messages: &mut Vec<String>) {
    if got.len() != want.len() {
        messages.push(format!(
            "{label}: {} activation(s) vs {}",
            got.len(),
            want.len()
        ));
        return;
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if let Some(j) = g
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .position(|(a, b)| a.to_bits() != b.to_bits())
        {
            messages.push(format!(
                "{label}: activation {i} element {j} not bit-identical"
            ));
            return;
        }
    }
}

/// Runs one artifact case end to end.
pub fn run_artifact_case(case_seed: u64, opts: &ArtifactCheckOptions) -> ArtifactCaseOutcome {
    let cfg = CaseConfig::generate(case_seed);
    let (graph, params, input) = case_model(&cfg);
    let compiled = CompiledModel::compile(
        &graph,
        &params,
        (cfg.c_in, cfg.h, cfg.w),
        Q16Format::default(),
    );
    let bytes = compiled.to_bytes();
    let mut checks = 0u64;
    let mut messages = Vec::new();

    // 1. Round trip: canonical bytes, bit-identical execution.
    match CompiledModel::from_bytes(&bytes) {
        Ok(loaded) => {
            if loaded.to_bytes() != bytes {
                messages.push("re-serialization of the loaded artifact differs".to_string());
            }
            checks += 1;
            let fresh = compiled.forward(&input);
            let from_artifact = loaded.forward(&input);
            bit_compare(
                "artifact-loaded vs freshly-compiled execution",
                &from_artifact,
                &fresh,
                &mut messages,
            );
            checks += 1;
            let spec = SpecNet::new(&graph, &params).forward(&input);
            bit_compare(
                "artifact-loaded vs SpecNet execution",
                &from_artifact,
                &spec,
                &mut messages,
            );
            checks += 1;
        }
        Err(e) => messages.push(format!("valid artifact rejected: {e}")),
    }

    // 2. Corruption: every mutation must be rejected with a typed error.
    let load_opts = LoadOptions {
        skip_layers_checksum: opts.inject_load_bug,
    };
    let mut r = OracleRng::new(mix(case_seed, 4));
    let mut mutations = 0u64;
    let mut rejections: BTreeMap<&'static str, u64> = BTreeMap::new();
    for _ in 0..MUTATIONS_PER_CASE {
        // A drawn mutation can degenerate (identical swapped regions); give
        // the stream a few attempts before conceding the slot.
        let Some((mutation, mutated)) = (0..8).find_map(|_| {
            let m = draw_mutation(&mut r, bytes.len());
            m.apply(&bytes).map(|out| (m, out))
        }) else {
            continue;
        };
        mutations += 1;
        checks += 1;
        let loaded =
            std::panic::catch_unwind(|| CompiledModel::from_bytes_with(&mutated, load_opts));
        match loaded {
            Ok(Ok(_)) => messages.push(format!(
                "accepted a corrupted artifact ({})",
                mutation.describe()
            )),
            Ok(Err(e)) => {
                *rejections.entry(e.kind()).or_insert(0) += 1;
            }
            Err(_) => messages.push(format!(
                "loader panicked instead of returning a typed error ({})",
                mutation.describe()
            )),
        }
    }

    let failure = if messages.is_empty() {
        None
    } else {
        Some(ArtifactFailure {
            seed: case_seed,
            config: cfg.describe(),
            messages,
        })
    };
    ArtifactCaseOutcome {
        seed: case_seed,
        checks,
        mutations,
        rejections,
        failure,
    }
}

/// Runs `cases` artifact cases derived from `seed` and aggregates the
/// report. Charges `oracle/artifact_*` metrics and emits an
/// `oracle/artifact_check` event when an observability sink is installed.
pub fn run_artifact_check(
    cases: usize,
    seed: u64,
    opts: &ArtifactCheckOptions,
) -> ArtifactCheckReport {
    let mut report = ArtifactCheckReport {
        run_seed: seed,
        cases: cases as u64,
        checks: 0,
        mutations: 0,
        rejections: BTreeMap::new(),
        failures: Vec::new(),
    };
    for i in 0..cases {
        let outcome = run_artifact_case(mix(seed, i as u64), opts);
        report.checks += outcome.checks;
        report.mutations += outcome.mutations;
        for (k, n) in outcome.rejections {
            *report.rejections.entry(k).or_insert(0) += n;
        }
        if let Some(f) = outcome.failure {
            report.failures.push(f);
        }
    }
    snapea_obs::counter("oracle/artifact_cases").add(report.cases);
    snapea_obs::counter("oracle/artifact_mutations").add(report.mutations);
    snapea_obs::counter("oracle/artifact_failures").add(report.failures.len() as u64);
    snapea_obs::event!(
        "oracle/artifact_check",
        cases = report.cases,
        checks = report.checks,
        mutations = report.mutations,
        failures = report.failures.len() as u64,
    );
    report
}

/// Keeps the planted-bug contract honest at the type level: the battery
/// only ever inspects [`ArtifactError`] through `kind()`, so a new error
/// variant cannot silently escape the rejection tally.
const _: fn(&ArtifactError) -> &'static str = ArtifactError::kind;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_cases_pass_clean() {
        let r = run_artifact_check(25, 7, &ArtifactCheckOptions::default());
        assert!(r.passed(), "{}", r.render_text());
        assert!(r.mutations >= 25 * 2, "mutator must mostly land");
        assert_eq!(
            r.rejections.values().sum::<u64>(),
            r.mutations,
            "every mutation rejected"
        );
        // Over a few dozen mutations the battery must exercise more than one
        // rejection path (checksums plus structural errors).
        assert!(
            r.rejections.len() >= 2,
            "rejection kinds too uniform: {:?}",
            r.rejections
        );
    }

    #[test]
    fn injected_loader_bug_is_caught_and_replayable() {
        let opts = ArtifactCheckOptions {
            inject_load_bug: true,
        };
        let r = run_artifact_check(200, 7, &opts);
        assert!(
            !r.passed(),
            "a loader that skips the LAYERS checksum must accept some corruption"
        );
        let text = r.render_text();
        assert!(text.contains("accepted a corrupted artifact"), "{text}");
        assert!(
            text.contains("replay: snapea-tool selfcheck --artifact --replay 0x"),
            "{text}"
        );
        // And the replayed single case reproduces the failure.
        let seed = r.failures[0].seed;
        assert!(run_artifact_case(seed, &opts).failure.is_some());
        assert!(
            run_artifact_case(seed, &ArtifactCheckOptions::default())
                .failure
                .is_none(),
            "the same case passes with full verification"
        );
    }

    #[test]
    fn report_json_shape() {
        let r = run_artifact_check(2, 1, &ArtifactCheckOptions::default());
        let j = r.to_json();
        assert_eq!(j.get("cases").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("passed").and_then(Json::as_bool), Some(true));
        assert!(j.get("mutations").and_then(Json::as_u64).is_some());
        assert!(j.get("rejections").is_some());
    }
}
