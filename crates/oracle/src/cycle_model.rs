//! Straight-line analytical cycle/MAC model for the PE array.
//!
//! The simulator's `map_layer` dispatches `(kernel, image, window-chunk)`
//! units onto the least-loaded PE, pays a `window_len`-cycle buffer fill the
//! first time a kernel lands on a PE, runs lane groups at the group's
//! straggler pace, and barriers at the layer boundary. Rather than replicate
//! that machinery (heap order, 2×2 window tiling), this module derives
//! *provable bounds* on the layer's cycle count from first principles:
//!
//! * **Lower bound** — total busy work is at least `⌈macs / lanes⌉` (a lane
//!   group of `lanes` windows retires at most `lanes` MACs per cycle), and
//!   every kernel with work pays at least one buffer fill; the makespan of
//!   any schedule is at least the total work divided by the PE count.
//! * **Upper bound** — greedy least-loaded dispatch satisfies Graham's list
//!   scheduling bound `makespan ≤ total/P + max_unit`. Per-unit busy time is
//!   at most `⌈chunk_len / lanes⌉ ×` the unit's largest window op count
//!   (window tiling permutes windows within the `(image, kernel)` plane, so
//!   the plane maximum bounds every group's straggler), and each kernel is
//!   filled at most `min(units_per_kernel, P)` times.
//!
//! The chunking arithmetic (`chunks_per_kernel`, near-equal chunk lengths)
//! is content-independent and documented on `map_layer`; it is re-derived
//! here from those documented formulas, not shared as code.
//!
//! A simulated layer whose cycle count falls outside `[lower, upper]`, or
//! whose MAC total differs from the profile's, has diverged from the
//! microarchitecture it claims to model.

use snapea::exec::LayerProfile;

/// Analytical bounds on one layer's simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBounds {
    /// No valid schedule finishes earlier than this.
    pub lower: u64,
    /// Greedy least-loaded dispatch never finishes later than this.
    pub upper: u64,
    /// Exact MAC count the simulator must report (the profile's op total).
    pub macs: u64,
}

impl CycleBounds {
    /// Whether a simulated cycle count is consistent with the model.
    pub fn admits(&self, cycles: u64) -> bool {
        self.lower <= cycles && cycles <= self.upper
    }
}

/// Computes cycle bounds for executing `profile` on an array of `pe_count`
/// PEs with `lanes` lanes each.
///
/// # Panics
///
/// Panics if `pe_count` or `lanes` is zero.
pub fn pe_array_bounds(pe_count: usize, lanes: usize, profile: &LayerProfile) -> CycleBounds {
    assert!(pe_count >= 1 && lanes >= 1, "a non-degenerate array");
    let (images, kernels, windows, wl) = (
        profile.images(),
        profile.kernels(),
        profile.windows(),
        profile.window_len(),
    );
    let macs = profile.total_ops();
    if images == 0 || kernels == 0 || windows == 0 {
        return CycleBounds {
            lower: 0,
            upper: 0,
            macs,
        };
    }

    // Chunking per the documented mapping policy.
    let max_chunks = windows.div_ceil(lanes).max(1);
    let chunks_per_kernel = pe_count.div_ceil(kernels).clamp(1, max_chunks);
    let chunk_lens: Vec<usize> = (0..chunks_per_kernel)
        .map(|c| (c + 1) * windows / chunks_per_kernel - c * windows / chunks_per_kernel)
        .filter(|&len| len > 0)
        .collect();
    let groups_per_plane: u64 = chunk_lens
        .iter()
        .map(|&len| len.div_ceil(lanes) as u64)
        .sum();
    let max_groups_per_unit = chunk_lens
        .iter()
        .map(|&len| len.div_ceil(lanes) as u64)
        .max()
        .unwrap_or(0);
    let units_per_kernel = images * chunk_lens.len();

    // Lower bound: busy work retires ≤ lanes MACs per cycle, and every
    // kernel's weights are filled into at least one PE.
    let busy_lb = macs.div_ceil(lanes as u64);
    let fills_lb = (kernels * wl) as u64;
    let lower = (busy_lb + fills_lb).div_ceil(pe_count as u64);

    // Upper bound: Graham's bound over upper-bounded unit costs.
    let mut sum_plane_max = 0u64;
    let mut max_plane_max = 0u64;
    for img in 0..images {
        for k in 0..kernels {
            let m = profile
                .kernel_ops(img, k)
                .iter()
                .copied()
                .max()
                .unwrap_or(0) as u64;
            sum_plane_max += m;
            max_plane_max = max_plane_max.max(m);
        }
    }
    let total_busy_ub = sum_plane_max * groups_per_plane;
    let fills_ub = (kernels * units_per_kernel.min(pe_count) * wl) as u64;
    let max_unit_ub = wl as u64 + max_plane_max * max_groups_per_unit;
    let upper = (total_busy_ub + fills_ub).div_ceil(pe_count as u64) + max_unit_ub;

    CycleBounds { lower, upper, macs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(images: usize, kernels: usize, windows: usize, wl: usize, op: u32) -> LayerProfile {
        LayerProfile::from_ops(
            images,
            kernels,
            windows,
            wl,
            vec![op; images * kernels * windows],
        )
    }

    #[test]
    fn bounds_are_ordered_and_positive_for_dense_work() {
        let p = profile(2, 6, 30, 9, 9);
        for (pes, lanes) in [(64, 4), (256, 1), (1, 1), (4, 8)] {
            let b = pe_array_bounds(pes, lanes, &p);
            assert!(b.lower <= b.upper, "pes={pes} lanes={lanes}");
            assert!(b.lower > 0);
            assert_eq!(b.macs, 2 * 6 * 30 * 9);
        }
    }

    #[test]
    fn empty_layer_has_zero_bounds() {
        let p = profile(1, 3, 0, 9, 0);
        let b = pe_array_bounds(64, 4, &p);
        assert_eq!((b.lower, b.upper, b.macs), (0, 0, 0));
    }

    #[test]
    fn single_pe_bounds_are_exact_for_uniform_ops() {
        // One PE, one lane, one kernel, one image: the schedule is fully
        // serial — cycles = fill + total ops. Both bounds must admit it.
        let p = profile(1, 1, 5, 4, 3);
        let b = pe_array_bounds(1, 1, &p);
        let serial = 4 + 5 * 3;
        assert!(b.admits(serial), "{b:?} vs {serial}");
    }
}
