//! The differential harness: generates cases, runs the fast paths and the
//! oracle side by side, and reports every divergence as a replayable,
//! minimized failure.
//!
//! Per case the harness asserts:
//!
//! 1. `Conv2d::forward` (im2col + GEMM + pool) matches the 7-loop oracle
//!    within a window-length-scaled float tolerance;
//! 2. the exact-mode executor output is **bit-identical** to the oracle's
//!    independent window walk, with identical per-window op counts, and (for
//!    non-negative inputs) post-ReLU equal to the dense reference;
//! 3. the predictive-mode executor output is bit-identical to the oracle's
//!    speculative walk, non-predicted windows match the dense reference
//!    post-ReLU, and `PredictionStats` tallies equal the oracle's
//!    re-derivation (exactly, including the f64 masses);
//! 4. executed MAC totals never exceed the oracle's dense MAC count;
//! 5. for both accelerator presets, the simulator's MAC total equals the
//!    profile's and its cycle count sits inside the analytical
//!    [`crate::cycle_model`] bounds; the analytic PE engine is additionally
//!    cross-checked against the cycle-stepped reference on the case's data;
//! 6. max/avg pooling and the fully-connected layer match their naive
//!    references (max bit-for-bit including argmax, the rest within
//!    tolerance).
//!
//! A failing case is re-run on every single-image / single-kernel
//! sub-problem to find a minimal reproduction, and reported with its seed
//! and config line. [`HarnessOptions::inject_exact_bug`] flips one output
//! bit before the exact-mode comparison — the smoke test proving the
//! harness actually detects and reports divergence.

use crate::cycle_model::pe_array_bounds;
use crate::gen::CaseConfig;
use crate::reference::{self, OracleTermination};
use crate::rng::{mix, OracleRng};
use snapea::exec::{execute_conv, execute_conv_stats, LayerConfig, LayerProfile, PredictionStats};
use snapea::params::{KernelMode, LayerParams};
use snapea_accel::sim::map_layer;
use snapea_accel::{engine, AccelConfig, LayerWorkload};
use snapea_nn::ops::{AvgPool, Conv2d, Linear, MaxPool, PoolGeom};
use snapea_obs::Json;
use snapea_tensor::{Shape2, Shape4, Tensor2, Tensor4};
use std::fmt::Write as _;

/// Harness knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HarnessOptions {
    /// Flip the low mantissa bit of the first exact-mode output element
    /// before comparison — a deliberate bug injection proving failures are
    /// detected and reported with a replayable case.
    pub inject_exact_bug: bool,
}

/// A failed case, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The case seed (replay with `snapea-tool selfcheck --replay <seed>`).
    pub seed: u64,
    /// The generated configuration, rendered.
    pub config: String,
    /// One message per failed check.
    pub messages: Vec<String>,
    /// Smallest single-image/single-kernel sub-case that still fails, if
    /// minimization found one.
    pub minimized: Option<String>,
}

/// Outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case seed.
    pub seed: u64,
    /// Checks performed.
    pub checks: u64,
    /// MACs the executor actually performed (exact + predictive runs).
    pub exec_macs: u64,
    /// Dense MACs the oracle counted for the same runs.
    pub dense_macs: u64,
    /// The failure, if any check tripped.
    pub failure: Option<CaseFailure>,
}

/// Aggregate result of a selfcheck run.
#[derive(Debug, Clone)]
pub struct SelfCheckReport {
    /// The run seed cases were derived from.
    pub run_seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Checks performed.
    pub checks: u64,
    /// MACs the executor performed across all cases.
    pub exec_macs: u64,
    /// Dense MACs across the same runs.
    pub dense_macs: u64,
    /// Every failed case.
    pub failures: Vec<CaseFailure>,
}

impl SelfCheckReport {
    /// Whether every check of every case passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Fraction of dense MACs the executor skipped across the fuzzed cases.
    pub fn mac_savings(&self) -> f64 {
        if self.dense_macs == 0 {
            0.0
        } else {
            1.0 - self.exec_macs as f64 / self.dense_macs as f64
        }
    }

    /// Human-readable report; failures include seed, config, and a replay
    /// command line.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "selfcheck seed={}: {} cases, {} checks, {} failure(s); \
             executor MACs {} / dense {} (savings {:.1}%)",
            self.run_seed,
            self.cases,
            self.checks,
            self.failures.len(),
            self.exec_macs,
            self.dense_macs,
            100.0 * self.mac_savings(),
        );
        for f in &self.failures {
            let _ = write!(
                s,
                "\nFAILED case seed={:#018x}\n  config: {}",
                f.seed, f.config
            );
            for m in &f.messages {
                let _ = write!(s, "\n  - {m}");
            }
            if let Some(m) = &f.minimized {
                let _ = write!(s, "\n  minimized: {m}");
            }
            let _ = write!(
                s,
                "\n  replay: snapea-tool selfcheck --replay {:#018x}",
                f.seed
            );
        }
        s
    }

    /// Structured report (the CLI's `--json` payload).
    pub fn to_json(&self) -> Json {
        let failures: Vec<Json> = self
            .failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("seed", Json::Str(format!("{:#018x}", f.seed))),
                    ("config", Json::Str(f.config.clone())),
                    (
                        "messages",
                        Json::Arr(f.messages.iter().map(|m| Json::Str(m.clone())).collect()),
                    ),
                    (
                        "minimized",
                        match &f.minimized {
                            Some(m) => Json::Str(m.clone()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("seed", Json::U64(self.run_seed)),
            ("cases", Json::U64(self.cases)),
            ("checks", Json::U64(self.checks)),
            ("failed", Json::U64(self.failures.len() as u64)),
            ("exec_macs", Json::U64(self.exec_macs)),
            ("dense_macs", Json::U64(self.dense_macs)),
            ("mac_savings", Json::F64(self.mac_savings())),
            ("passed", Json::Bool(self.passed())),
            ("failures", Json::Arr(failures)),
        ])
    }
}

/// Tolerance for comparing sums accumulated in different orders: scales with
/// the number of terms (the fast path sums via im2col/GEMM, the oracle in
/// coordinate order).
fn tol(terms: usize) -> f32 {
    1e-4 + terms as f32 * 4e-5
}

/// Decodes a flat `(image·kernels + kernel)·windows + window` index for a
/// failure message.
fn locate(idx: usize, kernels: usize, windows: usize, ow: usize) -> String {
    let (pair, w) = (idx / windows.max(1), idx % windows.max(1));
    let (n, k) = (pair / kernels.max(1), pair % kernels.max(1));
    format!(
        "image {n} kernel {k} window {w} (oy {}, ox {})",
        w / ow.max(1),
        w % ow.max(1)
    )
}

struct ConvCheck {
    checks: u64,
    exec_macs: u64,
    dense_macs: u64,
    messages: Vec<String>,
    exact_profile: LayerProfile,
    predictive_profile: Option<LayerProfile>,
}

/// Runs the convolution-side differential checks (1–4 in the module docs).
fn check_conv(
    conv: &Conv2d,
    input: &Tensor4,
    modes: &[KernelMode],
    signed_inputs: bool,
    inject: bool,
) -> ConvCheck {
    let geom = conv.geom();
    let s = input.shape();
    let (kernels, windows) = (conv.c_out(), conv.out_shape(s).plane_len());
    let ow = reference::conv_out_dim(s.w, geom.kw, geom.stride, geom.pad);
    let t = tol(conv.window_len());
    let mut checks = 0u64;
    let mut messages = Vec::new();

    let dense = reference::conv_dense(conv.weight(), conv.bias(), geom, input);
    let dense_macs = reference::dense_macs(s, conv.c_out(), geom);

    let compare_tol = |label: &str, got: &[f32], want: &[f32], msgs: &mut Vec<String>| {
        let mut worst = 0.0f32;
        let mut at = None;
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            let d = (g - w).abs();
            if d > t && d > worst {
                worst = d;
                at = Some((i, g, w));
            }
        }
        if let Some((i, g, w)) = at {
            msgs.push(format!(
                "{label}: max error {worst:e} exceeds tolerance {t:e}; first worst at {}: {g} vs {w}",
                locate(i, kernels, windows, ow)
            ));
        }
    };
    let compare_bits = |label: &str, got: &[f32], want: &[f32], msgs: &mut Vec<String>| {
        let mut diffs = 0usize;
        let mut first = None;
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                diffs += 1;
                if first.is_none() {
                    first = Some((i, g, w));
                }
            }
        }
        if let Some((i, g, w)) = first {
            msgs.push(format!(
                "{label}: {diffs} element(s) not bit-identical; first at {}: {g} (bits {:#010x}) vs {w} (bits {:#010x})",
                locate(i, kernels, windows, ow),
                g.to_bits(),
                w.to_bits()
            ));
        }
    };
    let compare_ops = |label: &str, got: &[u32], want: &[u32], msgs: &mut Vec<String>| {
        if let Some((i, (&g, &w))) = got.iter().zip(want).enumerate().find(|(_, (g, w))| g != w) {
            msgs.push(format!(
                "{label}: op counts differ at {}: executor {g} vs oracle {w}",
                locate(i, kernels, windows, ow)
            ));
        }
    };

    // 1. Fast convolution path vs the 7-loop oracle.
    let fwd = conv.forward(input);
    compare_tol(
        "Conv2d::forward (im2col/GEMM) vs 7-loop oracle",
        fwd.as_slice(),
        dense.as_slice(),
        &mut messages,
    );
    checks += 1;

    // 2. Exact mode: bit-identical walk, identical op counts, dense-equal
    //    post-ReLU (the paper's zero-accuracy-loss contract).
    let exact_cfg = LayerConfig::exact(conv);
    let er = execute_conv(conv, input, &exact_cfg);
    let eo = reference::execute_layer(conv.weight(), conv.bias(), geom, input, &LayerParams::Exact);
    let mut exec_out = er.output.as_slice().to_vec();
    if inject && !exec_out.is_empty() {
        exec_out[0] = f32::from_bits(exec_out[0].to_bits() ^ 1);
    }
    compare_bits(
        "exact-mode executor vs oracle walk",
        &exec_out,
        eo.output.as_slice(),
        &mut messages,
    );
    checks += 1;
    compare_ops(
        "exact-mode op counts",
        er.profile.ops_slice(),
        &eo.ops,
        &mut messages,
    );
    checks += 1;
    if !signed_inputs {
        let relu_exec: Vec<f32> = er.output.iter().map(|&v| v.max(0.0)).collect();
        let relu_dense: Vec<f32> = dense.iter().map(|&v| v.max(0.0)).collect();
        compare_tol(
            "exact-mode post-ReLU vs dense reference",
            &relu_exec,
            &relu_dense,
            &mut messages,
        );
        checks += 1;
    }
    let mut exec_macs = er.profile.total_ops();
    let mut dense_total = dense_macs;
    if er.profile.total_ops() > dense_macs {
        messages.push(format!(
            "exact-mode MAC count {} exceeds oracle dense count {dense_macs}",
            er.profile.total_ops()
        ));
    }
    checks += 1;

    // 3. Predictive mode.
    let mut predictive_profile = None;
    if modes.iter().any(KernelMode::is_speculative) {
        let params = LayerParams::Predictive(modes.to_vec());
        let cfg = LayerConfig::from_params(conv, &params);
        let pr = execute_conv_stats(conv, input, &cfg);
        let po = reference::execute_layer(conv.weight(), conv.bias(), geom, input, &params);
        compare_bits(
            "predictive-mode executor vs oracle walk",
            pr.output.as_slice(),
            po.output.as_slice(),
            &mut messages,
        );
        checks += 1;
        compare_ops(
            "predictive-mode op counts",
            pr.profile.ops_slice(),
            &po.ops,
            &mut messages,
        );
        checks += 1;
        if !signed_inputs {
            // Non-predicted windows carry the exact value (sign-check
            // terminations are output-preserving); predicted windows were
            // squashed by the early ReLU and are exempt.
            let mut worst = 0.0f32;
            let mut at = None;
            for (i, (&g, &d)) in pr.output.as_slice().iter().zip(dense.iter()).enumerate() {
                if po.terminations[i] == Some(OracleTermination::Predicted) {
                    continue;
                }
                let err = (g.max(0.0) - d.max(0.0)).abs();
                if err > t && err > worst {
                    worst = err;
                    at = Some(i);
                }
            }
            if let Some(i) = at {
                messages.push(format!(
                    "predictive-mode non-predicted window diverges from dense reference at {}: error {worst:e} > {t:e}",
                    locate(i, kernels, windows, ow)
                ));
            }
            checks += 1;
        }
        let ostats = oracle_stats(&po, s.n, kernels, windows);
        if let Some(m) = compare_stats(&pr.stats, &ostats) {
            messages.push(m);
        }
        checks += 1;
        if pr.profile.total_ops() > dense_macs {
            messages.push(format!(
                "predictive-mode MAC count {} exceeds oracle dense count {dense_macs}",
                pr.profile.total_ops()
            ));
        }
        checks += 1;
        exec_macs += pr.profile.total_ops();
        dense_total += dense_macs;
        predictive_profile = Some(pr.profile);
    }

    ConvCheck {
        checks,
        exec_macs,
        dense_macs: dense_total,
        messages,
        exact_profile: er.profile,
        predictive_profile,
    }
}

/// Re-derives `PredictionStats` from the oracle layer (same per-pair
/// accumulation grouping as the executor, so the f64 masses must match
/// bit-for-bit).
fn oracle_stats(
    layer: &reference::OracleLayer,
    images: usize,
    kernels: usize,
    windows: usize,
) -> PredictionStats {
    let mut total = PredictionStats::default();
    for pair in 0..images * kernels {
        let mut st = PredictionStats::default();
        for w in 0..windows {
            let idx = pair * windows + w;
            let full = layer.full[idx];
            if full < 0.0 {
                st.negative_windows += 1;
            } else {
                st.positive_windows += 1;
                st.positive_mass += full as f64;
            }
            match layer.terminations[idx] {
                Some(OracleTermination::Predicted) => {
                    if full < 0.0 {
                        st.true_negatives += 1;
                    } else {
                        st.false_negatives += 1;
                        st.squashed_mass += full.max(0.0) as f64;
                    }
                }
                Some(OracleTermination::SignCheck) => st.sign_terminations += 1,
                None => {}
            }
        }
        total.merge(&st);
    }
    total
}

fn compare_stats(got: &PredictionStats, want: &PredictionStats) -> Option<String> {
    let counts_ok = got.negative_windows == want.negative_windows
        && got.positive_windows == want.positive_windows
        && got.true_negatives == want.true_negatives
        && got.false_negatives == want.false_negatives
        && got.sign_terminations == want.sign_terminations;
    let masses_ok = got.positive_mass.to_bits() == want.positive_mass.to_bits()
        && got.squashed_mass.to_bits() == want.squashed_mass.to_bits();
    if counts_ok && masses_ok {
        None
    } else {
        Some(format!(
            "PredictionStats diverge from oracle tallies: executor {got:?} vs oracle {want:?}"
        ))
    }
}

/// Simulator-side checks (5 in the module docs) for one profile.
fn check_sim(
    label: &str,
    profile: &LayerProfile,
    out_h: usize,
    out_w: usize,
    input_words: u64,
    messages: &mut Vec<String>,
) -> u64 {
    let mut checks = 0u64;
    for (cname, cfg) in [
        ("snapea", AccelConfig::snapea()),
        ("eyeriss", AccelConfig::eyeriss()),
    ] {
        let layer =
            LayerWorkload::new("case", profile.clone(), input_words).with_spatial(out_h, out_w);
        let (run, cycles) = map_layer(&cfg, &layer, |_| {});
        let bounds = pe_array_bounds(cfg.pe_count(), cfg.lanes_per_pe, profile);
        if run.macs != bounds.macs {
            messages.push(format!(
                "{label} simulator ({cname}): MAC total {} != profile total {}",
                run.macs, bounds.macs
            ));
        }
        checks += 1;
        if !bounds.admits(cycles) {
            messages.push(format!(
                "{label} simulator ({cname}): {cycles} cycles outside analytical bounds [{}, {}]",
                bounds.lower, bounds.upper
            ));
        }
        checks += 1;
    }
    // The analytic PE engine vs the cycle-stepped reference, on this case's
    // actual op counts.
    let slices: Vec<&[u32]> = (0..profile.images())
        .flat_map(|img| (0..profile.kernels()).map(move |k| profile.kernel_ops(img, k)))
        .collect();
    let lanes = AccelConfig::snapea().lanes_per_pe;
    let a = engine::run_pe(&slices, lanes, profile.window_len());
    let c = engine::cycle_exact_pe(&slices, lanes, profile.window_len());
    if a != c {
        messages.push(format!(
            "{label} analytic PE run {a:?} != cycle-exact reference {c:?}"
        ));
    }
    checks += 1;
    checks
}

/// Pooling and fully-connected checks (6 in the module docs), parameterised
/// from the case seed.
fn check_aux(seed: u64, input: &Tensor4, messages: &mut Vec<String>) -> u64 {
    let mut checks = 0u64;
    let mut r = OracleRng::new(mix(seed, 3));
    let k = r.range(1, 3);
    let stride = r.range(1, 2);
    let pad = if k > 1 { r.range(0, 1) } else { 0 };

    let (mp_out, mp_arg) = MaxPool::with_pad(k, stride, pad).forward(input);
    let (or_out, or_arg) = reference::maxpool(input, k, stride, pad);
    if mp_out
        .as_slice()
        .iter()
        .zip(or_out.as_slice())
        .any(|(a, b)| a.to_bits() != b.to_bits())
        || mp_arg != or_arg
    {
        messages.push(format!(
            "MaxPool (k={k} stride={stride} pad={pad}) diverges from naive reference"
        ));
    }
    checks += 1;

    let avg = AvgPool {
        geom: PoolGeom::with_pad(k, stride, pad),
    }
    .forward(input);
    let or_avg = reference::avgpool(input, k, stride, pad);
    if avg
        .as_slice()
        .iter()
        .zip(or_avg.as_slice())
        .any(|(a, b)| (a - b).abs() > 1e-5)
    {
        messages.push(format!(
            "AvgPool (k={k} stride={stride} pad={pad}) diverges from naive reference"
        ));
    }
    checks += 1;

    let features = input.shape().item_len();
    let out_features = r.range(1, 4);
    let wv: Vec<f32> = (0..out_features * features)
        .map(|_| r.uniform(-1.0, 1.0))
        .collect();
    let bias: Vec<f32> = (0..out_features).map(|_| r.uniform(-0.5, 0.5)).collect();
    // lint:allow(P1) wv is generated with exactly out_features × features elements above
    let weight = Tensor2::from_vec(Shape2::new(out_features, features), wv).expect("fc weight");
    let lin = Linear::from_parts(weight, bias);
    let got = lin.forward(input);
    let want = reference::fc(lin.weight(), lin.bias(), input);
    let ft = tol(features);
    if got
        .as_slice()
        .iter()
        .zip(want.as_slice())
        .any(|(a, b)| (a - b).abs() > ft)
    {
        messages.push(format!(
            "Linear ({out_features}×{features}) diverges from naive reference beyond {ft:e}"
        ));
    }
    checks += 1;
    checks
}

/// Runs one fuzzed case end to end.
pub fn run_case(case_seed: u64, opts: &HarnessOptions) -> CaseOutcome {
    let cfg = CaseConfig::generate(case_seed);
    let (conv, input) = cfg.build();
    let mut cc = check_conv(
        &conv,
        &input,
        &cfg.modes,
        cfg.signed_inputs,
        opts.inject_exact_bug,
    );

    let s = input.shape();
    let geom = conv.geom();
    let oh = reference::conv_out_dim(s.h, geom.kh, geom.stride, geom.pad);
    let ow = reference::conv_out_dim(s.w, geom.kw, geom.stride, geom.pad);
    let input_words = s.item_len() as u64;
    cc.checks += check_sim(
        "exact",
        &cc.exact_profile,
        oh,
        ow,
        input_words,
        &mut cc.messages,
    );
    if let Some(p) = cc.predictive_profile.clone() {
        cc.checks += check_sim("predictive", &p, oh, ow, input_words, &mut cc.messages);
    }
    cc.checks += check_aux(case_seed, &input, &mut cc.messages);

    let failure = if cc.messages.is_empty() {
        None
    } else {
        let minimized = minimize(&cfg, &conv, &input, opts);
        Some(CaseFailure {
            seed: case_seed,
            config: cfg.describe(),
            messages: cc.messages,
            minimized,
        })
    };
    CaseOutcome {
        seed: case_seed,
        checks: cc.checks,
        exec_macs: cc.exec_macs,
        dense_macs: cc.dense_macs,
        failure,
    }
}

/// Re-runs every single-image/single-kernel sub-problem of a failed case and
/// reports the first that still fails the convolution checks.
fn minimize(
    cfg: &CaseConfig,
    conv: &Conv2d,
    input: &Tensor4,
    opts: &HarnessOptions,
) -> Option<String> {
    let geom = conv.geom();
    for n in 0..cfg.images {
        let sub_input = Tensor4::from_vec(
            Shape4::new(1, cfg.c_in, cfg.h, cfg.w),
            input.item(n).to_vec(),
        )
        // lint:allow(P1) item(n) is a c_in × h × w slice of the input's own shape
        .expect("item slice matches shape");
        for k in 0..cfg.c_out {
            let weight = Tensor4::from_vec(
                Shape4::new(1, cfg.c_in, geom.kh, geom.kw),
                conv.weight().item(k).to_vec(),
            )
            // lint:allow(P1) item(k) is a c_in × kh × kw slice of the weight tensor's own shape
            .expect("kernel slice matches shape");
            let sub_conv = Conv2d::from_parts(weight, vec![conv.bias()[k]], geom);
            let sub = check_conv(
                &sub_conv,
                &sub_input,
                &cfg.modes[k..=k],
                cfg.signed_inputs,
                opts.inject_exact_bug,
            );
            if let Some(first) = sub.messages.first() {
                return Some(format!("image {n}, kernel {k} alone reproduces: {first}"));
            }
        }
    }
    None
}

/// Runs `cases` fuzzed cases derived from `seed` and aggregates the report.
/// Charges `oracle/*` metrics and emits an `oracle/selfcheck` event when an
/// observability sink is installed.
pub fn run_selfcheck(cases: usize, seed: u64, opts: &HarnessOptions) -> SelfCheckReport {
    let mut report = SelfCheckReport {
        run_seed: seed,
        cases: cases as u64,
        checks: 0,
        exec_macs: 0,
        dense_macs: 0,
        failures: Vec::new(),
    };
    for i in 0..cases {
        let outcome = run_case(mix(seed, i as u64), opts);
        report.checks += outcome.checks;
        report.exec_macs += outcome.exec_macs;
        report.dense_macs += outcome.dense_macs;
        if let Some(f) = outcome.failure {
            report.failures.push(f);
        }
    }
    snapea_obs::counter("oracle/cases").add(report.cases);
    snapea_obs::counter("oracle/checks").add(report.checks);
    snapea_obs::counter("oracle/failures").add(report.failures.len() as u64);
    snapea_obs::event!(
        "oracle/selfcheck",
        cases = report.cases,
        checks = report.checks,
        failures = report.failures.len() as u64,
        mac_savings = report.mac_savings(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_cases_pass_clean() {
        let r = run_selfcheck(20, 7, &HarnessOptions::default());
        assert!(r.passed(), "{}", r.render_text());
        assert!(r.checks >= 20 * 8, "expected several checks per case");
        assert!(r.exec_macs <= r.dense_macs);
    }

    #[test]
    fn injected_bug_is_caught_minimized_and_replayable() {
        let opts = HarnessOptions {
            inject_exact_bug: true,
        };
        let r = run_selfcheck(3, 7, &opts);
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 3, "every case trips the injected bug");
        let text = r.render_text();
        assert!(
            text.contains("seed=0x"),
            "failure must print the seed:\n{text}"
        );
        assert!(
            text.contains("config:"),
            "failure must print the config:\n{text}"
        );
        assert!(
            text.contains("replay:"),
            "failure must print a replay line:\n{text}"
        );
        assert!(
            text.contains("minimized:"),
            "failure must include a minimized reproduction:\n{text}"
        );
        // And the replayed single case reproduces the failure.
        let seed = r.failures[0].seed;
        let again = run_case(seed, &opts);
        assert!(again.failure.is_some());
        assert!(run_case(seed, &HarnessOptions::default()).failure.is_none());
    }

    #[test]
    fn report_json_shape() {
        let r = run_selfcheck(2, 1, &HarnessOptions::default());
        let j = r.to_json();
        assert_eq!(j.get("cases").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("passed").and_then(Json::as_bool), Some(true));
        assert!(j.get("checks").and_then(Json::as_u64).unwrap() > 0);
        assert!(j.get("failures").is_some());
    }
}
