//! Deliberately-naive reference implementations.
//!
//! Everything here is written from the paper's definitions (and the
//! workspace's documented layout conventions) using direct coordinate
//! loops: no im2col, no GEMM, no worker pool, no `GatherTable`. The window
//! walk re-derives the sign/predictive weight ordering, the PAU decision
//! rule, and the pinned eight-lane reduction order of the SIMD engine
//! (DESIGN.md §11) from their specifications so the executor's output can
//! be pinned **bit-for-bit** — the oracle performs the identical sequence
//! of `f32` operations, arrived at through independent code.
//!
//! Layout conventions relied on (all documented on the fast-path types):
//!
//! * activations and conv weights are dense row-major NCHW; a kernel's flat
//!   weight index is `(c * kh + ky) * kw + kx`;
//! * output extents are `(d + 2·pad).saturating_sub(k) / stride + 1` for
//!   convolutions (a kernel larger than the padded input still produces one
//!   all-padding window) and `0` when `d + 2·pad < k` for pooling;
//! * max-pool treats padding as absent (first maximum wins; an all-padding
//!   window outputs 0 with argmax `u32::MAX`), average-pool divides by the
//!   full window area.

use snapea::params::{KernelMode, LayerParams};
use snapea_tensor::{ConvGeom, Shape4, Tensor2, Tensor4};

/// Convolution output extent along one dimension.
pub fn conv_out_dim(d: usize, k: usize, stride: usize, pad: usize) -> usize {
    (d + 2 * pad).saturating_sub(k) / stride + 1
}

/// Pooling output extent along one dimension (0 when the padded input is
/// smaller than the window).
pub fn pool_out_dim(d: usize, k: usize, stride: usize, pad: usize) -> usize {
    let padded = d + 2 * pad;
    if padded < k {
        0
    } else {
        (padded - k) / stride + 1
    }
}

/// MAC count of a dense convolution over `input` (no skipping of any kind).
pub fn dense_macs(input: Shape4, c_out: usize, geom: ConvGeom) -> u64 {
    let oh = conv_out_dim(input.h, geom.kh, geom.stride, geom.pad);
    let ow = conv_out_dim(input.w, geom.kw, geom.stride, geom.pad);
    (input.n * c_out * oh * ow * input.c * geom.kh * geom.kw) as u64
}

/// Direct 7-loop convolution: `n, o, oy, ox, c, ky, kx`, accumulating in
/// `f32` with the bias added first. Padding contributes nothing.
pub fn conv_dense(weight: &Tensor4, bias: &[f32], geom: ConvGeom, input: &Tensor4) -> Tensor4 {
    let s = input.shape();
    let ws = weight.shape();
    assert_eq!(ws.c, s.c, "kernel channels match input channels");
    assert_eq!(bias.len(), ws.n, "one bias per kernel");
    let oh = conv_out_dim(s.h, geom.kh, geom.stride, geom.pad);
    let ow = conv_out_dim(s.w, geom.kw, geom.stride, geom.pad);
    let mut out = Tensor4::zeros(Shape4::new(s.n, ws.n, oh, ow));
    for n in 0..s.n {
        for o in 0..ws.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[o];
                    for c in 0..s.c {
                        for ky in 0..geom.kh {
                            for kx in 0..geom.kw {
                                let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                                let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w
                                {
                                    acc += input[(n, c, iy as usize, ix as usize)]
                                        * weight[(o, c, ky, kx)];
                                }
                            }
                        }
                    }
                    out[(n, o, oy, ox)] = acc;
                }
            }
        }
    }
    out
}

/// Element-wise rectifier.
pub fn relu(t: &Tensor4) -> Tensor4 {
    let mut out = t.clone();
    for v in out.as_mut_slice() {
        *v = v.max(0.0);
    }
    out
}

/// Naive max pooling (Caffe semantics; see module docs). Returns the output
/// and the argmax map (linear input offsets, `u32::MAX` for all-padding
/// windows).
pub fn maxpool(input: &Tensor4, k: usize, stride: usize, pad: usize) -> (Tensor4, Vec<u32>) {
    let s = input.shape();
    let (oh, ow) = (
        pool_out_dim(s.h, k, stride, pad),
        pool_out_dim(s.w, k, stride, pad),
    );
    let mut out = Tensor4::zeros(Shape4::new(s.n, s.c, oh, ow));
    let mut arg = Vec::with_capacity(s.n * s.c * oh * ow);
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = u32::MAX;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy < 0 || ix < 0 || iy as usize >= s.h || ix as usize >= s.w {
                                continue;
                            }
                            let v = input[(n, c, iy as usize, ix as usize)];
                            if v > best {
                                best = v;
                                best_off = s.offset(n, c, iy as usize, ix as usize) as u32;
                            }
                        }
                    }
                    out[(n, c, oy, ox)] = if best_off == u32::MAX { 0.0 } else { best };
                    arg.push(best_off);
                }
            }
        }
    }
    (out, arg)
}

/// Naive average pooling: padding counts as zero, the divisor is always the
/// full `k × k` window area.
pub fn avgpool(input: &Tensor4, k: usize, stride: usize, pad: usize) -> Tensor4 {
    let s = input.shape();
    let (oh, ow) = (
        pool_out_dim(s.h, k, stride, pad),
        pool_out_dim(s.w, k, stride, pad),
    );
    let mut out = Tensor4::zeros(Shape4::new(s.n, s.c, oh, ow));
    for n in 0..s.n {
        for c in 0..s.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
                                acc += input[(n, c, iy as usize, ix as usize)];
                            }
                        }
                    }
                    out[(n, c, oy, ox)] = acc / (k * k) as f32;
                }
            }
        }
    }
    out
}

/// Naive fully-connected forward: `y[n][o] = b[o] + Σ_i W[o][i]·x[n][i]`.
pub fn fc(weight: &Tensor2, bias: &[f32], input: &Tensor4) -> Tensor4 {
    let s = input.shape();
    let (rows, cols) = (weight.shape().rows, weight.shape().cols);
    assert_eq!(s.item_len(), cols, "input features match weight columns");
    assert_eq!(bias.len(), rows, "one bias per output feature");
    let mut out = Tensor4::zeros(Shape4::new(s.n, rows, 1, 1));
    for n in 0..s.n {
        let x = input.item(n);
        for o in 0..rows {
            let mut acc = bias[o];
            for (i, &xv) in x.iter().enumerate() {
                acc += weight[(o, i)] * xv;
            }
            out[(n, o, 0, 0)] = acc;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Independent SnaPEA window walk
// ---------------------------------------------------------------------------

/// Why the oracle walk stopped early (mirrors the paper's two termination
/// mechanisms; independent of `snapea::TerminationKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleTermination {
    /// Speculative threshold check fired after the speculative MACs.
    Predicted,
    /// Sign check fired in the trailing negative-weight region.
    SignCheck,
}

/// One kernel's execution order, re-derived from the reordering spec.
#[derive(Debug, Clone)]
pub struct OracleOrder {
    /// Original weight index at each execution position.
    pub order: Vec<usize>,
    /// Speculative prefix length (0 = exact mode).
    pub spec_len: usize,
    /// Position where the trailing negative region begins.
    pub neg_start: usize,
    /// Speculative threshold (ignored when `spec_len == 0`).
    pub threshold: f32,
}

/// Ascending `(value, index)` comparison per the reordering spec's
/// `total_cmp`-plus-index tie-break (total order, so `-0.0` sorts before
/// `0.0` and no NaN escape hatch is needed) — mirroring `snapea`'s
/// `reorder` module exactly.
fn by_value(weights: &[f32]) -> impl Fn(&usize, &usize) -> std::cmp::Ordering + '_ {
    |&a, &b| weights[a].total_cmp(&weights[b]).then(a.cmp(&b))
}

/// Exact-mode order: non-negative weights in original order, then negative
/// weights ascending by value (descending magnitude), ties by index.
pub fn exact_order(weights: &[f32]) -> OracleOrder {
    let mut order: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] >= 0.0).collect();
    let neg_start = order.len();
    let mut negs: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] < 0.0).collect();
    negs.sort_by(by_value(weights));
    order.extend(negs);
    OracleOrder {
        order,
        spec_len: 0,
        neg_start,
        threshold: 0.0,
    }
}

/// Predictive-mode order: sort ascending by value, split into `groups`
/// near-equal contiguous chunks (`lo = g·len/groups`, `hi = (g+1)·len/groups`),
/// take each chunk's largest-magnitude member (ties to the higher index) as
/// the speculative prefix, then the remaining weights positive-first as in
/// [`exact_order`].
///
/// # Panics
///
/// Panics if `groups` is zero or exceeds the weight count.
pub fn predictive_order(weights: &[f32], groups: usize, threshold: f32) -> OracleOrder {
    let len = weights.len();
    assert!(groups >= 1 && groups <= len, "1 <= groups <= weight count");
    let mut sorted: Vec<usize> = (0..len).collect();
    sorted.sort_by(by_value(weights));
    let mut spec = Vec::with_capacity(groups);
    for g in 0..groups {
        let lo = g * len / groups;
        let hi = ((g + 1) * len / groups).max(lo + 1);
        let mut pick = sorted[lo];
        for &i in &sorted[lo..hi] {
            let better = weights[i].abs() > weights[pick].abs()
                || (weights[i].abs() == weights[pick].abs() && i > pick);
            if better {
                pick = i;
            }
        }
        spec.push(pick);
    }
    let mut order = spec.clone();
    for (i, &w) in weights.iter().enumerate() {
        if w >= 0.0 && !spec.contains(&i) {
            order.push(i);
        }
    }
    let neg_start = order.len();
    let mut negs: Vec<usize> = (0..len)
        .filter(|&i| weights[i] < 0.0 && !spec.contains(&i))
        .collect();
    negs.sort_by(by_value(weights));
    order.extend(negs);
    OracleOrder {
        order,
        spec_len: groups,
        neg_start,
        threshold,
    }
}

/// Derives the order for one kernel under `mode`.
pub fn order_for_mode(weights: &[f32], mode: KernelMode) -> OracleOrder {
    match mode {
        KernelMode::Exact => exact_order(weights),
        KernelMode::Speculate(p) => predictive_order(weights, p.groups, p.threshold),
    }
}

/// Outcome of one oracle window walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleWindow {
    /// MACs executed before stopping.
    pub ops: u32,
    /// Value written to the output buffer (0.0 when the early ReLU fired).
    pub output: f32,
    /// Early-termination kind, if any.
    pub termination: Option<OracleTermination>,
}

/// Length of the walk's probe-free prefix: no PAU check can fire before the
/// speculative boundary (`spec_len` when speculating), the negative region
/// (`neg_start`), or the end of the window, so everything below their
/// minimum runs unconditionally. This re-derives the executor's
/// `unconditional_prefix_len` from the order's own fields.
fn unconditional_len(ord: &OracleOrder) -> usize {
    let spec_stop = if ord.spec_len > 0 {
        ord.spec_len
    } else {
        usize::MAX
    };
    spec_stop.min(ord.neg_start).min(ord.order.len())
}

/// The pinned eight-lane boundary: the largest multiple of 8 inside the
/// probe-free prefix (see DESIGN.md §11).
fn lane_m8(ord: &OracleOrder) -> usize {
    let stop1 = unconditional_len(ord);
    stop1 - stop1 % 8
}

/// Pinned eight-lane prefix reduction over execution positions `0..m8`,
/// written as independent scalar code: position `p` accumulates into lane
/// `p % 8` in ascending order, padding taps contribute an exact-zero
/// product (bitwise-identical to skipping them, because every lane starts
/// at `+0.0` and `+0.0 + ±0.0` is `+0.0`), and the lanes collapse through
/// the fixed `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` tree before the bias
/// joins. When `m8 == 0` the bias is returned untouched — never `bias +
/// 0.0`, which would flip a `-0.0` bias.
#[allow(clippy::too_many_arguments)]
fn pinned_prefix(
    input: &Tensor4,
    n: usize,
    oy: usize,
    ox: usize,
    weights: &[f32],
    ord: &OracleOrder,
    geom: ConvGeom,
    bias: f32,
    m8: usize,
) -> f32 {
    if m8 == 0 {
        return bias;
    }
    let s = input.shape();
    let mut l = [0.0_f32; 8];
    for (p, &o) in ord.order[..m8].iter().enumerate() {
        let c = o / (geom.kh * geom.kw);
        let ky = (o % (geom.kh * geom.kw)) / geom.kw;
        let kx = o % geom.kw;
        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
        let v = if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
            input[(n, c, iy as usize, ix as usize)]
        } else {
            0.0
        };
        l[p % 8] += v * weights[o];
    }
    bias + (((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7])))
}

/// Walks one window in execution order, probing the PAU decision rule before
/// every MAC: the predictive check fires exactly at position `spec_len` when
/// the partial sum is below the threshold; from `neg_start` on, any negative
/// partial sum terminates. Positions below the pinned lane boundary (which
/// never carry a probe) accumulate through the eight-lane tree of
/// [`pinned_prefix`]; the rest run sequentially. Input taps are decoded from
/// the original weight index (`o → (c, ky, kx)`); out-of-bounds (padding)
/// taps occupy a MAC slot but add nothing.
#[allow(clippy::too_many_arguments)]
pub fn walk_window(
    input: &Tensor4,
    n: usize,
    oy: usize,
    ox: usize,
    weights: &[f32],
    ord: &OracleOrder,
    geom: ConvGeom,
    bias: f32,
) -> OracleWindow {
    let s = input.shape();
    let m8 = lane_m8(ord);
    let mut acc = pinned_prefix(input, n, oy, ox, weights, ord, geom, bias, m8);
    for (p, &o) in ord.order.iter().enumerate().skip(m8) {
        if ord.spec_len > 0 && p == ord.spec_len && acc < ord.threshold {
            return OracleWindow {
                ops: p as u32,
                output: 0.0,
                termination: Some(OracleTermination::Predicted),
            };
        }
        if p >= ord.neg_start && acc < 0.0 {
            return OracleWindow {
                ops: p as u32,
                output: acc,
                termination: Some(OracleTermination::SignCheck),
            };
        }
        let c = o / (geom.kh * geom.kw);
        let ky = (o % (geom.kh * geom.kw)) / geom.kw;
        let kx = o % geom.kw;
        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
        if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
            acc += input[(n, c, iy as usize, ix as usize)] * weights[o];
        }
    }
    OracleWindow {
        ops: ord.order.len() as u32,
        output: acc,
        termination: None,
    }
}

/// Completes one window's dot product in execution order regardless of the
/// PAU (the value the executor's prediction accounting compares against).
/// Uses the *walk's* lane boundary — `lane_m8` from the probe-free prefix,
/// not from the full length — so a walk that never terminates produces
/// bit-identical output to this value.
#[allow(clippy::too_many_arguments)]
pub fn full_window_value(
    input: &Tensor4,
    n: usize,
    oy: usize,
    ox: usize,
    weights: &[f32],
    ord: &OracleOrder,
    geom: ConvGeom,
    bias: f32,
) -> f32 {
    let s = input.shape();
    let m8 = lane_m8(ord);
    let mut acc = pinned_prefix(input, n, oy, ox, weights, ord, geom, bias, m8);
    for &o in &ord.order[m8..] {
        let c = o / (geom.kh * geom.kw);
        let ky = (o % (geom.kh * geom.kw)) / geom.kw;
        let kx = o % geom.kw;
        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
        if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
            acc += input[(n, c, iy as usize, ix as usize)] * weights[o];
        }
    }
    acc
}

/// Result of an oracle layer execution, laid out like the executor's
/// outputs: `output` is NCHW, the per-window vectors are indexed
/// `(n · kernels + k) · windows + w` with windows in row-major `(oy, ox)`
/// order.
#[derive(Debug, Clone)]
pub struct OracleLayer {
    /// Pre-ReLU output (predicted windows squashed to 0.0).
    pub output: Tensor4,
    /// MACs executed per window.
    pub ops: Vec<u32>,
    /// Termination kind per window.
    pub terminations: Vec<Option<OracleTermination>>,
    /// Full dot-product value per window (execution order).
    pub full: Vec<f32>,
}

/// Executes a convolution layer through the oracle walk, one kernel mode per
/// output channel (`LayerParams::Exact` means every kernel is exact).
pub fn execute_layer(
    weight: &Tensor4,
    bias: &[f32],
    geom: ConvGeom,
    input: &Tensor4,
    params: &LayerParams,
) -> OracleLayer {
    let s = input.shape();
    let c_out = weight.shape().n;
    let modes: Vec<KernelMode> = match params {
        LayerParams::Exact => vec![KernelMode::Exact; c_out],
        LayerParams::Predictive(m) => {
            assert_eq!(m.len(), c_out, "one mode per kernel");
            m.clone()
        }
    };
    let orders: Vec<OracleOrder> = (0..c_out)
        .map(|k| order_for_mode(weight.item(k), modes[k]))
        .collect();
    let oh = conv_out_dim(s.h, geom.kh, geom.stride, geom.pad);
    let ow = conv_out_dim(s.w, geom.kw, geom.stride, geom.pad);
    let windows = oh * ow;
    let mut output = Tensor4::zeros(Shape4::new(s.n, c_out, oh, ow));
    let mut ops = Vec::with_capacity(s.n * c_out * windows);
    let mut terminations = Vec::with_capacity(s.n * c_out * windows);
    let mut full = Vec::with_capacity(s.n * c_out * windows);
    for n in 0..s.n {
        for k in 0..c_out {
            let kw = weight.item(k);
            for oy in 0..oh {
                for ox in 0..ow {
                    let r = walk_window(input, n, oy, ox, kw, &orders[k], geom, bias[k]);
                    output[(n, k, oy, ox)] = r.output;
                    ops.push(r.ops);
                    terminations.push(r.termination);
                    full.push(full_window_value(
                        input, n, oy, ox, kw, &orders[k], geom, bias[k],
                    ));
                }
            }
        }
    }
    OracleLayer {
        output,
        ops,
        terminations,
        full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_order_partitions_by_sign() {
        let w = [0.5, -1.0, 0.0, 2.0, -0.25];
        let o = exact_order(&w);
        assert_eq!(o.order, vec![0, 2, 3, 1, 4]);
        assert_eq!(o.neg_start, 3);
        assert_eq!(o.spec_len, 0);
    }

    #[test]
    fn predictive_order_is_permutation_with_spec_prefix() {
        let w = [0.1, -0.9, 0.4, -0.2, 0.8, -0.05, 0.3, 0.05];
        for groups in 1..=w.len() {
            let o = predictive_order(&w, groups, 0.0);
            let mut seen = o.order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..w.len()).collect::<Vec<_>>(), "groups={groups}");
            assert_eq!(o.spec_len, groups);
            assert!(o.neg_start >= groups);
            for &i in &o.order[groups..o.neg_start] {
                assert!(w[i] >= 0.0);
            }
            for &i in &o.order[o.neg_start..] {
                assert!(w[i] < 0.0);
            }
        }
    }

    #[test]
    fn dense_conv_identity_kernel() {
        // A 1x1 identity kernel reproduces the input.
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, -2.0, 3.0, 4.0]).unwrap();
        let w = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]).unwrap();
        let y = conv_dense(&w, &[0.0], ConvGeom::square(1, 1, 0), &x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn walk_matches_full_value_when_nothing_terminates() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = [0.5, 0.25, 0.125, 1.0];
        let ord = exact_order(&w);
        let r = walk_window(&x, 0, 0, 0, &w, &ord, ConvGeom::square(2, 1, 0), 0.1);
        let f = full_window_value(&x, 0, 0, 0, &w, &ord, ConvGeom::square(2, 1, 0), 0.1);
        assert_eq!(r.termination, None);
        assert_eq!(r.ops, 4);
        assert_eq!(r.output.to_bits(), f.to_bits());
    }

    #[test]
    fn walk_matches_full_value_through_the_lane_prefix() {
        // 17 weights (c=17, 1x1 kernel): m8 covers two full lane blocks
        // plus a scalar tail, and the positive prefix keeps the walk from
        // terminating, so walk and full must agree bit-for-bit.
        let n = 17;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() + 1.5).collect();
        let ws: Vec<f32> = (0..n)
            .map(|i| (i as f32 * 0.53).cos() * 0.25 + 0.3)
            .collect();
        let x = Tensor4::from_vec(Shape4::new(1, n, 1, 1), xs).unwrap();
        let ord = exact_order(&ws);
        assert_eq!(ord.neg_start, n, "all-positive weights keep the walk alive");
        assert_eq!(super::lane_m8(&ord), 16);
        let g = ConvGeom::square(1, 1, 0);
        let r = walk_window(&x, 0, 0, 0, &ws, &ord, g, 0.1);
        let f = full_window_value(&x, 0, 0, 0, &ws, &ord, g, 0.1);
        assert_eq!(r.termination, None);
        assert_eq!(r.ops, n as u32);
        assert_eq!(r.output.to_bits(), f.to_bits());
    }

    #[test]
    fn pool_references_agree_on_simple_case() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        let (y, arg) = maxpool(&x, 2, 2, 0);
        assert_eq!(y.as_slice(), &[5.0]);
        assert_eq!(arg, vec![1]);
        let a = avgpool(&x, 2, 2, 0);
        assert_eq!(a.as_slice(), &[2.75]);
    }
}
