//! Self-contained SplitMix64 PRNG.
//!
//! The oracle must not share randomness infrastructure with the code under
//! test (the workspace's `rand` usage), and replayability requires that a
//! case be fully determined by one `u64` seed. SplitMix64 is tiny, has a
//! full 2^64 period over its state increment, and its finalizer is a strong
//! bit mixer — good enough to derive independent per-case seeds from
//! `(run_seed, case_index)`.

/// Deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct OracleRng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixes a seed and an index into an independent stream seed, so case `i`
/// of run `seed` can be replayed without generating cases `0..i`.
pub fn mix(seed: u64, index: u64) -> u64 {
    finalize(
        seed.wrapping_add(index.wrapping_mul(GOLDEN))
            .wrapping_add(GOLDEN),
    )
}

fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OracleRng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        OracleRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        finalize(self.state)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits; exact division by 2^24.
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = OracleRng::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = OracleRng::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = OracleRng::new(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f32_and_range_stay_in_bounds() {
        let mut r = OracleRng::new(42);
        for _ in 0..1000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let n = r.range(3, 9);
            assert!((3..=9).contains(&n));
            let u = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&u));
        }
        assert_eq!(r.range(7, 7), 7);
    }

    #[test]
    fn mix_separates_case_indices() {
        let s: Vec<u64> = (0..16).map(|i| mix(1, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
        assert_ne!(mix(1, 0), mix(2, 0));
    }
}
