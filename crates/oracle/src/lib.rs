//! Differential-testing oracle for the SnaPEA reproduction.
//!
//! Everything the fast paths compute — im2col GEMM convolution, the
//! sign-reordered speculative executor, the pooled/tiled parallel kernels,
//! the cycle-level PE-array simulator — is re-derived here from the paper's
//! definitions using deliberately naive code: direct coordinate loops, no
//! im2col, no worker pool, no shared kernel code with `snapea-core`. The
//! [`harness`] then fuzzes hundreds of seeded random configurations and
//! asserts, case by case:
//!
//! * exact-mode executor output is **bit-identical** to the oracle's
//!   independent window walk, and (for non-negative inputs) post-ReLU equal
//!   to the dense 7-loop convolution within float tolerance;
//! * predictive-mode output is bit-identical to the oracle's speculative
//!   walk, predicted windows are squashed to zero, and non-predicted
//!   windows match the dense reference post-ReLU;
//! * executed MAC counts never exceed the dense MAC count, and
//!   `PredictionStats` tallies agree with the oracle's termination kinds;
//! * simulator cycle counts sit inside the analytical [`cycle_model`]
//!   bounds, and simulator MAC totals equal the profile's.
//!
//! Every failure is reported as a replayable case: the 64-bit case seed plus
//! a rendered config line, with an automatic single-image/single-kernel
//! minimization pass. See `DESIGN.md` §7 for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact_check;
pub mod cycle_model;
pub mod gen;
pub mod harness;
pub mod reference;
pub mod rng;

pub use artifact_check::{
    run_artifact_case, run_artifact_check, ArtifactCheckOptions, ArtifactCheckReport,
};
pub use gen::CaseConfig;
pub use harness::{run_case, run_selfcheck, HarnessOptions, SelfCheckReport};
pub use rng::OracleRng;
