//! Deterministic case generator.
//!
//! A case is fully determined by one 64-bit seed: shape, geometry, batch
//! size, per-kernel speculation modes, sparsity and sign statistics, and the
//! actual weight/input data (drawn from sub-streams of the same seed). This
//! makes every fuzzed configuration replayable from the single number the
//! harness prints on failure.

use crate::rng::{mix, OracleRng};
use snapea::params::{KernelMode, LayerParams};
use snapea_nn::ops::Conv2d;
use snapea_tensor::{ConvGeom, Shape4, Tensor4};
use std::fmt::Write as _;

/// One fuzzed convolution configuration.
#[derive(Debug, Clone)]
pub struct CaseConfig {
    /// The case seed (everything below derives from it).
    pub seed: u64,
    /// Batch size.
    pub images: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels (kernels).
    pub c_out: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Convolution geometry (square kernel, stride, padding).
    pub geom: ConvGeom,
    /// Per-kernel execution mode.
    pub modes: Vec<KernelMode>,
    /// Whether inputs may be negative (first-layer-style activations; exact
    /// mode's sign check is only output-preserving for non-negative inputs,
    /// so semantic checks against the dense reference are gated on this).
    pub signed_inputs: bool,
    /// Probability that an input element is exactly zero.
    pub input_zero_fraction: f32,
    /// Probability that a weight is negative.
    pub weight_neg_fraction: f32,
}

impl CaseConfig {
    /// Derives a full configuration from a case seed.
    pub fn generate(seed: u64) -> Self {
        let mut r = OracleRng::new(mix(seed, 0));
        let images = r.range(1, 2);
        let c_in = r.range(1, 4);
        let c_out = r.range(1, 5);
        let h = r.range(2, 9);
        let w = r.range(2, 9);
        // Occasionally exceed the input extent: a kernel larger than the
        // padded input exercises the all-padding-window convention.
        let k = if r.chance(0.08) {
            r.range(5, 7)
        } else {
            r.range(1, 4)
        };
        let stride = r.range(1, 3);
        let pad = r.range(0, 2);
        let geom = ConvGeom::square(k, stride, pad);
        let window_len = c_in * k * k;
        let signed_inputs = r.chance(0.15);
        let input_zero_fraction = r.uniform(0.0, 0.6);
        let weight_neg_fraction = r.uniform(0.2, 0.8);
        let modes = (0..c_out)
            .map(|_| {
                if r.chance(0.65) {
                    let groups = r.range(1, window_len.min(8));
                    let threshold = if r.chance(0.05) {
                        f32::INFINITY // every window predicted
                    } else if r.chance(0.05) {
                        f32::NEG_INFINITY // speculation never fires
                    } else {
                        r.uniform(-0.5, 1.0)
                    };
                    KernelMode::spec(threshold, groups)
                } else {
                    KernelMode::Exact
                }
            })
            .collect();
        CaseConfig {
            seed,
            images,
            c_in,
            c_out,
            h,
            w,
            geom,
            modes,
            signed_inputs,
            input_zero_fraction,
            weight_neg_fraction,
        }
    }

    /// Materialises the layer and input batch (deterministic sub-streams of
    /// the case seed).
    pub fn build(&self) -> (Conv2d, Tensor4) {
        let mut wr = OracleRng::new(mix(self.seed, 1));
        let wshape = Shape4::new(self.c_out, self.c_in, self.geom.kh, self.geom.kw);
        let wv: Vec<f32> = (0..wshape.len())
            .map(|_| {
                let mag = wr.uniform(0.0, 1.0);
                if wr.chance(self.weight_neg_fraction) {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        let bias: Vec<f32> = (0..self.c_out).map(|_| wr.uniform(-0.2, 0.2)).collect();
        // lint:allow(P1) wv is generated with exactly wshape.len() elements two lines up
        let weight = Tensor4::from_vec(wshape, wv).expect("weight element count");
        let conv = Conv2d::from_parts(weight, bias, self.geom);

        let mut ir = OracleRng::new(mix(self.seed, 2));
        let ishape = Shape4::new(self.images, self.c_in, self.h, self.w);
        let iv: Vec<f32> = (0..ishape.len())
            .map(|_| {
                if ir.chance(self.input_zero_fraction) {
                    0.0
                } else if self.signed_inputs {
                    ir.uniform(-1.0, 1.5)
                } else {
                    ir.uniform(0.0, 1.5)
                }
            })
            .collect();
        // lint:allow(P1) iv is generated with exactly ishape.len() elements above
        let input = Tensor4::from_vec(ishape, iv).expect("input element count");
        (conv, input)
    }

    /// The layer's parameters (always the per-kernel `Predictive` form so
    /// exact and speculating kernels can mix).
    pub fn params(&self) -> LayerParams {
        LayerParams::Predictive(self.modes.clone())
    }

    /// Whether any kernel speculates.
    pub fn is_predictive(&self) -> bool {
        self.modes.iter().any(KernelMode::is_speculative)
    }

    /// Kernel window length `c_in × k × k`.
    pub fn window_len(&self) -> usize {
        self.c_in * self.geom.kh * self.geom.kw
    }

    /// One replayable line describing the case.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "seed={:#018x} images={} c_in={} c_out={} h={} w={} k={} stride={} pad={} \
             signed_inputs={} zero_frac={:.2} neg_frac={:.2} modes=[",
            self.seed,
            self.images,
            self.c_in,
            self.c_out,
            self.h,
            self.w,
            self.geom.kh,
            self.geom.stride,
            self.geom.pad,
            self.signed_inputs,
            self.input_zero_fraction,
            self.weight_neg_fraction,
        );
        for (i, m) in self.modes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match m {
                KernelMode::Exact => s.push_str("exact"),
                KernelMode::Speculate(p) => {
                    let _ = write!(s, "spec({},{})", p.threshold, p.groups);
                }
            }
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0u64, 1, 2, 0xDEAD_BEEF] {
            let a = CaseConfig::generate(seed);
            let b = CaseConfig::generate(seed);
            assert_eq!(a.describe(), b.describe());
            let (ca, ia) = a.build();
            let (cb, ib) = b.build();
            assert_eq!(ca.weight().as_slice(), cb.weight().as_slice());
            assert_eq!(ia.as_slice(), ib.as_slice());
        }
        assert_ne!(
            CaseConfig::generate(1).describe(),
            CaseConfig::generate(2).describe()
        );
    }

    #[test]
    fn groups_never_exceed_window_len() {
        for seed in 0..300u64 {
            let c = CaseConfig::generate(seed);
            for m in &c.modes {
                if let KernelMode::Speculate(p) = m {
                    assert!(p.groups >= 1 && p.groups <= c.window_len(), "seed={seed}");
                }
            }
        }
    }

    #[test]
    fn fuzz_space_covers_the_interesting_axes() {
        // Over a few hundred seeds the generator must hit speculation,
        // exactness, signed inputs, padding, stride>1, and oversized kernels.
        let cases: Vec<CaseConfig> = (0..400).map(CaseConfig::generate).collect();
        assert!(cases.iter().any(CaseConfig::is_predictive));
        assert!(cases.iter().any(|c| !c.is_predictive()));
        assert!(cases.iter().any(|c| c.signed_inputs));
        assert!(cases.iter().any(|c| c.geom.pad > 0));
        assert!(cases.iter().any(|c| c.geom.stride > c.geom.kh));
        assert!(cases.iter().any(|c| c.geom.kh > c.h + 2 * c.geom.pad));
        assert!(cases.iter().any(|c| c
            .modes
            .iter()
            .any(|m| matches!(m, KernelMode::Speculate(p) if !p.threshold.is_finite()))));
    }
}
