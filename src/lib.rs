//! Facade crate for the SnaPEA reproduction workspace.
//!
//! Re-exports the constituent crates so examples and integration tests can
//! use one import root:
//!
//! * [`tensor`] — dense tensors, fixed point, initializers;
//! * [`obs`] — metrics, span timers and the structured run-event log;
//! * [`nn`] — the CNN substrate (layers, graphs, training, dataset, zoo);
//! * [`core`] — the SnaPEA contribution (reordering, PAU, executor,
//!   Algorithm-1 optimizer);
//! * [`accel`] — the cycle-level accelerator simulator and baseline;
//! * [`oracle`] — independent reference models and the differential
//!   selfcheck harness that pins the executor, kernels, and simulator.
//!
//! # Examples
//!
//! ```
//! use snapea_suite::core::exec::{execute_conv, LayerConfig};
//! use snapea_suite::nn::ops::Conv2d;
//! use snapea_suite::tensor::{im2col::ConvGeom, init, Shape4};
//!
//! let mut rng = init::rng(1);
//! let conv = Conv2d::new(2, 4, ConvGeom::square(3, 1, 1), &mut rng);
//! let x = init::uniform4(Shape4::new(1, 2, 6, 6), 1.0, &mut rng).map(f32::abs);
//! let r = execute_conv(&conv, &x, &LayerConfig::exact(&conv));
//! assert!(r.profile.total_ops() <= r.profile.full_macs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snapea as core;
pub use snapea_accel as accel;
pub use snapea_nn as nn;
pub use snapea_obs as obs;
pub use snapea_oracle as oracle;
pub use snapea_tensor as tensor;
