#!/usr/bin/env bash
# Perf benchmark harness: records scaling curves for the parallel hot paths
# (conv forward/backward incl. n=1 serving shapes, executor exact/predictive/
# q16, optimizer profiling), verifies every curve point bit-identical to the
# serial run, and writes BENCH_parallel.json (schema 2) + BENCH_kernels.json.
#
#   ./scripts/bench.sh                 # full shapes, BENCH_parallel.json
#   ./scripts/bench.sh --smoke         # tiny shapes (seconds), same checks
#   ./scripts/bench.sh --scaling       # full 1/2/4/8 thread grid
#   ./scripts/bench.sh --strict        # >=3x at t4 gate (skipped if 1 core)
#   ./scripts/bench.sh --threads 8     # pin the parallel thread count
#   ./scripts/bench.sh --kernels-only  # just BENCH_kernels.json (lane engine)
#
# Offline by design, like scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p snapea-bench --bin perfbench --offline
exec target/release/perfbench "$@"
