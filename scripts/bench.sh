#!/usr/bin/env bash
# Perf benchmark harness: times the parallel hot paths (conv forward/backward,
# executor exact + predictive, optimizer profiling) at SNAPEA_THREADS=1 versus
# N, verifies bit-identical outputs, and writes BENCH_parallel.json.
#
#   ./scripts/bench.sh                 # full shapes, BENCH_parallel.json
#   ./scripts/bench.sh --smoke         # tiny shapes (seconds), same checks
#   ./scripts/bench.sh --threads 8     # pin the parallel thread count
#
# Offline by design, like scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p snapea-bench --bin perfbench --offline
exec target/release/perfbench "$@"
