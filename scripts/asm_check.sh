#!/usr/bin/env bash
# Structural vectorization proof for the lane kernels (DESIGN.md §11).
#
#   ./scripts/asm_check.sh                  # assert the lane kernels vectorize
#   ./scripts/asm_check.sh --negative-smoke # assert the check CAN fail (seq_dot)
#
# The lane layer's hot kernels (`snapea_tensor::lane`) are `#[inline(never)]`
# precisely so their machine code survives as standalone symbols in the
# release rlib. This script disassembles the newest `libsnapea_tensor` rlib
# and asserts, per kernel, that the body contains packed vector float ops
# and zero scalar float multiplies — a structural proof that the compiler
# vectorized the eight-wide loops, immune to benchmark noise.
#
# `lane_q16_span` is deliberately absent from the strict set: its signed
# 32x32->64-bit widening multiply has no packed form on baseline x86-64
# (pmuldq is SSE4.1), so LLVM correctly emits unrolled scalar `imul`s. The
# q16 win comes from the eight-window batching, not SIMD multiplies.
#
# The negative smoke runs the same assertion against `seq_dot` — a
# deliberately sequential scalar reduction (its loop-carried dependency
# forbids vectorization) — and demands that it FAILS, proving the patterns
# actually discriminate (same prove-it-can-fail protocol as the lint and
# selfcheck smokes in check.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

NEGATIVE=0
if [ "${1:-}" = "--negative-smoke" ]; then
  NEGATIVE=1
fi

if ! command -v objdump > /dev/null 2>&1; then
  echo "SKIP: objdump not available; cannot verify vectorization"
  exit 0
fi

RLIB=$(ls -t target/release/deps/libsnapea_tensor-*.rlib 2> /dev/null | head -n 1)
if [ -z "$RLIB" ]; then
  echo "ERROR: no libsnapea_tensor rlib under target/release/deps; run cargo build --release first"
  exit 1
fi

# Arch-gated instruction patterns. VEC must appear >= 1 time per kernel;
# SCALAR must appear 0 times (a single scalar multiply in the loop body
# means the reduction fell back to scalar code).
ARCH=$(uname -m)
case "$ARCH" in
  x86_64)
    VEC='(v?)mulps|vfmadd[0-9]*ps|(v?)addps'
    SCALAR='mulss'
    ;;
  aarch64 | arm64)
    VEC='fmla[[:space:]]+v|fmul[[:space:]]+v|fadd[[:space:]]+v'
    SCALAR='fmul[[:space:]]+s[0-9]'
    ;;
  *)
    echo "SKIP: no patterns for architecture $ARCH"
    exit 0
    ;;
esac

DISASM=$(mktemp)
trap 'rm -f "$DISASM"' EXIT
objdump -d "$RLIB" > "$DISASM"

# Prints the disassembly of the symbol whose mangled name matches the
# fragment (`4lane` scopes to the lane module; the literal `17h` that
# precedes the symbol hash keeps `lane_dot` from also matching
# `lane_dot_resolved`).
extract() {
  awk -v pat="$1" '
    /^[0-9a-f]+ <.*>:$/ { insym = ($0 ~ pat) }
    insym { print }
  ' "$DISASM"
}

# check_kernel <name> <symbol regex> <expect: pass|fail>
check_kernel() {
  local name=$1 pat=$2 expect=$3
  local body vec scalar verdict
  body=$(extract "$pat")
  if [ -z "$body" ]; then
    echo "ERROR: symbol for $name not found in $RLIB"
    return 1
  fi
  vec=$(printf '%s\n' "$body" | grep -cE "$VEC" || true)
  scalar=$(printf '%s\n' "$body" | grep -cE "$SCALAR" || true)
  if [ "$vec" -ge 1 ] && [ "$scalar" -eq 0 ]; then
    verdict=pass
  else
    verdict=fail
  fi
  if [ "$verdict" != "$expect" ]; then
    echo "ERROR: $name: $vec vector op(s), $scalar scalar multiply(ies) — expected to $expect"
    return 1
  fi
  echo "    $name: $vec vector op(s), $scalar scalar multiply(ies) ($verdict, as expected)"
}

if [ "$NEGATIVE" -eq 1 ]; then
  # seq_dot is a plain sequential reduction: it must FAIL the vectorization
  # assertion, or the patterns prove nothing.
  echo "==> asm negative smoke: seq_dot must not pass the vector gate"
  check_kernel seq_dot '4lane.*seq_dot17h' fail
  exit 0
fi

echo "==> asm vectorization gate on $RLIB ($ARCH)"
check_kernel lane_axpy8 '4lane.*lane_axpy817h' pass
check_kernel lane_dot '4lane.*lane_dot17h' pass
check_kernel lane_dot_resolved '4lane.*lane_dot_resolved17h' pass
check_kernel lane_dot_gather '4lane.*lane_dot_gather17h' pass
echo "OK: all lane kernels carry packed vector float ops and no scalar multiplies"
