#!/usr/bin/env bash
# Tier-1 gate: everything below must pass before a change lands.
#
#   ./scripts/check.sh
#
# Offline by design — the workspace has no network access in CI, so every
# cargo invocation runs with --offline against the local registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

# The worker pool must produce bit-identical results at any thread count, so
# the whole suite runs serial and at 4 threads.
echo "==> cargo test -q --offline (SNAPEA_THREADS=1)"
SNAPEA_THREADS=1 cargo test --workspace -q --offline

echo "==> cargo test -q --offline (SNAPEA_THREADS=4)"
SNAPEA_THREADS=4 cargo test --workspace -q --offline

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> scripts/bench.sh --smoke"
./scripts/bench.sh --smoke --out /tmp/BENCH_parallel.smoke.json

echo "OK: build, tests (1 and 4 threads), clippy, and bench smoke all clean."
