#!/usr/bin/env bash
# Tier-1 gate: everything below must pass before a change lands.
#
#   ./scripts/check.sh
#
# Offline by design — the workspace has no network access in CI, so every
# cargo invocation runs with --offline against the local registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "OK: build, tests, and clippy all clean."
