#!/usr/bin/env bash
# Tier-1 gate: everything below must pass before a change lands.
#
#   ./scripts/check.sh
#
# Offline by design — the workspace has no network access in CI, so every
# cargo invocation runs with --offline against the local registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

# Asm vectorization gate (DESIGN.md §11): the lane kernels must survive as
# packed vector code in the release rlib, and — same prove-it-can-fail
# protocol as the lint and selfcheck smokes — the deliberately sequential
# seq_dot must FAIL the identical assertion.
echo "==> scripts/asm_check.sh"
./scripts/asm_check.sh
echo "==> scripts/asm_check.sh --negative-smoke"
./scripts/asm_check.sh --negative-smoke

# The worker pool must produce bit-identical results at any thread count, so
# the whole suite runs serial and at 4 threads, and the determinism suite
# additionally at 2 (the smallest count where the persistent pool's claim
# racing is live — a distinct interleaving regime from 4).
# SNAPEA_OVERSUBSCRIBE=1 lifts the pool's participants-per-core clamp so the
# threaded stages exercise real worker concurrency even on a 1-core runner.
echo "==> cargo test -q --offline (SNAPEA_THREADS=1)"
SNAPEA_THREADS=1 cargo test --workspace -q --offline

echo "==> cargo test -q --offline (SNAPEA_THREADS=4, oversubscribed)"
SNAPEA_THREADS=4 SNAPEA_OVERSUBSCRIBE=1 cargo test --workspace -q --offline

echo "==> cargo test -q --offline --test determinism (SNAPEA_THREADS=2, oversubscribed)"
SNAPEA_THREADS=2 SNAPEA_OVERSUBSCRIBE=1 cargo test -q --offline --test determinism

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Domain-specific static analysis (DESIGN.md §8): the workspace must lint
# clean — both the per-file token pass and the call-graph pass (R1
# determinism-reachability, R2 panic-reachability, R3 parallel-capture) —
# and, same protocol as selfcheck --inject-bug below, the lint must prove
# it *can* fail, on fixtures with planted violations.
LINT=./target/release/snapea-tool
echo "==> snapea-tool lint"
"$LINT" lint --root .
echo "==> snapea-tool lint --graph"
"$LINT" lint --root . --graph
echo "==> snapea-tool lint negative smoke (planted violation must fail)"
FIXTURE=$(mktemp -d)
trap 'rm -rf "$FIXTURE"' EXIT
mkdir -p "$FIXTURE/crates/core/src"
printf '[workspace]\n' > "$FIXTURE/Cargo.toml"
printf '#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n' \
  > "$FIXTURE/crates/core/src/lib.rs"
if "$LINT" lint --root "$FIXTURE" > /dev/null 2>&1; then
  echo "ERROR: planted D1 violation went undetected"; exit 1
fi

# Graph-rule negative smokes: one planted violation per call-graph rule,
# each required to fail naming the planted evidence chain. The fixtures
# live in a throwaway workspace so the graph pass sees only the plant.
graph_smoke() { # <rule> <chain-substring> : lint --graph must fail citing the chain
  local rule="$1" chain="$2" out
  if out=$("$LINT" lint --root "$FIXTURE" --graph --rule "$rule" 2>&1); then
    echo "ERROR: planted $rule violation went undetected"; exit 1
  fi
  echo "$out" | grep -qF "$chain" || {
    echo "ERROR: $rule finding does not name the planted chain '$chain':"
    echo "$out"; exit 1
  }
}

echo "==> snapea-tool lint --graph negative smoke: R1 (env read on the result path)"
printf '#![forbid(unsafe_code)]\npub mod exec;\n' > "$FIXTURE/crates/core/src/lib.rs"
cat > "$FIXTURE/crates/core/src/exec.rs" <<'EOF'
pub fn walk() {
    helper();
}
fn helper() {
    let _v = std::env::var("PLANTED");
}
EOF
graph_smoke R1 'chain: walk() → helper() → std::env::var'

echo "==> snapea-tool lint --graph negative smoke: R2 (panic reachable from pub API)"
cat > "$FIXTURE/crates/core/src/exec.rs" <<'EOF'
pub fn api(v: &[f32]) -> f32 {
    inner(v)
}
fn inner(v: &[f32]) -> f32 {
    *v.first().unwrap()
}
EOF
graph_smoke R2 'chain: api() → inner() → .unwrap()'

echo "==> snapea-tool lint --graph negative smoke: R3 (mutating capture in a par closure)"
cat > "$FIXTURE/crates/core/src/exec.rs" <<'EOF'
pub fn fanout(items: &mut [u32]) {
    let mut log = Vec::new();
    snapea_tensor::par::run_tasks(items, |i, _t| {
        log.push(i);
    });
}
EOF
graph_smoke R3 'chain: fanout() → run_tasks() → mutates captured `log` (.push())'
rm -rf "$FIXTURE/crates"

# Differential selfcheck: the speculative executor, kernels, and cycle
# simulator fuzzed against the snapea-oracle reference models, serial and
# parallel (results must be bit-identical at any thread count).
SELFCHECK=./target/release/snapea-tool
echo "==> snapea-tool selfcheck --cases 500 --seed 1 (SNAPEA_THREADS=1)"
SNAPEA_THREADS=1 "$SELFCHECK" selfcheck --cases 500 --seed 1
echo "==> snapea-tool selfcheck --cases 500 --seed 1 (SNAPEA_THREADS=2, oversubscribed)"
SNAPEA_THREADS=2 SNAPEA_OVERSUBSCRIBE=1 "$SELFCHECK" selfcheck --cases 500 --seed 1
echo "==> snapea-tool selfcheck --cases 500 --seed 1 (SNAPEA_THREADS=4, oversubscribed)"
SNAPEA_THREADS=4 SNAPEA_OVERSUBSCRIBE=1 "$SELFCHECK" selfcheck --cases 500 --seed 1

# The harness must also *detect* divergence: with a deliberately injected
# bug it has to fail and print a replayable case.
echo "==> snapea-tool selfcheck --inject-bug (must fail with a replayable case)"
if out=$("$SELFCHECK" selfcheck --cases 2 --seed 1 --inject-bug 2>&1); then
  echo "ERROR: injected bug went undetected"; exit 1
fi
echo "$out" | grep -q "replay: snapea-tool selfcheck --replay 0x" \
  || { echo "ERROR: failure report is missing the replay line"; exit 1; }

# Compiled-artifact gates: `compile` then `run --artifact` must print the
# same activation digest as the fresh-compile path (loading is bit-faithful
# and skips Algorithm 1), the corruption battery must reject every byte-level
# mutation with a typed error, and — same prove-it-can-fail protocol as the
# lint and selfcheck smokes — a planted loader bug (one skipped section
# checksum) must be caught with a replayable case.
echo "==> artifact compile/run round trip (output digests must match)"
ART="$FIXTURE/artifact"
mkdir -p "$ART"
SNAPEA_LOG=off "$SELFCHECK" train --workload AlexNet --epochs 0 \
  --out "$ART/model.json" > /dev/null
SNAPEA_LOG=off "$SELFCHECK" optimize "$ART/model.json" --images 6 \
  --out "$ART/params.json" > /dev/null
SNAPEA_LOG=off "$SELFCHECK" compile "$ART/model.json" "$ART/model.snapea" \
  --params "$ART/params.json" --json > "$ART/compile.json"
grep -q '"digest":"0x' "$ART/compile.json" \
  || { echo "ERROR: compile --json is missing the artifact digest"; exit 1; }
grep -q '"sections":{' "$ART/compile.json" \
  || { echo "ERROR: compile --json is missing the section breakdown"; exit 1; }
fresh=$(SNAPEA_LOG=off "$SELFCHECK" run "$ART/model.json" --params "$ART/params.json" \
  --images 4 --seed 7 --json | grep -o '"output_digest":"0x[0-9a-f]*"')
loaded=$(SNAPEA_LOG=off "$SELFCHECK" run --artifact "$ART/model.snapea" \
  --images 4 --seed 7 --json | grep -o '"output_digest":"0x[0-9a-f]*"')
if [ -z "$fresh" ] || [ "$fresh" != "$loaded" ]; then
  echo "ERROR: artifact run digest ${loaded:-<none>} != fresh run digest ${fresh:-<none>}"
  exit 1
fi
echo "    fresh and artifact runs agree: $fresh"

echo "==> snapea-tool selfcheck --artifact --cases 200 --seed 1 (corruption battery)"
"$SELFCHECK" selfcheck --artifact --cases 200 --seed 1

echo "==> snapea-tool selfcheck --artifact --inject-bug (planted loader bug must be caught)"
if out=$("$SELFCHECK" selfcheck --artifact --cases 200 --seed 3 --inject-bug 2>&1); then
  echo "ERROR: planted loader bug went undetected by the corruption battery"; exit 1
fi
echo "$out" | grep -q "replay: snapea-tool selfcheck --artifact --replay 0x" \
  || { echo "ERROR: battery failure report is missing the replay line"; exit 1; }

# Golden-fixture gate: the committed artifact is byte-frozen (the `artifact`
# integration test additionally pins its FNV-1a digest and re-serialization);
# drift here means the format changed without a VERSION bump + regeneration.
echo "==> golden artifact byte-stability gate (tests/golden/tiny.snapea)"
golden=$(cksum tests/golden/tiny.snapea)
want="2324201021 15284 tests/golden/tiny.snapea"
if [ "$golden" != "$want" ]; then
  echo "ERROR: golden artifact drifted: got '$golden', want '$want'"
  echo "       (format changes must bump VERSION and regenerate, see tests/artifact.rs)"
  exit 1
fi

echo "==> scripts/bench.sh --smoke --scaling"
PARALLEL_SMOKE=/tmp/BENCH_parallel.smoke.json
KERNELS_SMOKE=/tmp/BENCH_kernels.smoke.json
./scripts/bench.sh --smoke --scaling --out "$PARALLEL_SMOKE" \
  --kernels-out "$KERNELS_SMOKE"

# Schema-2 gate: both reports must carry the document version and the
# degraded flag (perf-diff keys its refusal off the latter), and every
# scaling-curve point must report bit_identical:true — one per "label".
echo "==> BENCH_parallel schema + curve bit-identity gate"
for f in "$PARALLEL_SMOKE" "$KERNELS_SMOKE"; do
  grep -q '"schema":2' "$f" || { echo "ERROR: $f missing schema 2"; exit 1; }
  grep -q '"degraded":' "$f" || { echo "ERROR: $f missing degraded flag"; exit 1; }
done
points=$(grep -o '"label":"t' "$PARALLEL_SMOKE" | wc -l)
identical=$(grep -o '"bit_identical":true' "$PARALLEL_SMOKE" | wc -l)
if [ "$points" -lt 1 ] || [ "$points" -ne "$identical" ]; then
  echo "ERROR: $PARALLEL_SMOKE: $identical of $points curve points bit-identical"
  exit 1
fi
echo "    $identical/$points curve points bit-identical"

# --kernels-only smoke: the quick lane-engine loop must write the kernels
# report and nothing else (no scaling curves, no BENCH_parallel).
echo "==> scripts/bench.sh --smoke --kernels-only"
KERNELS_ONLY_SMOKE=/tmp/BENCH_kernels.only.json
KERNELS_ONLY_OUT=/tmp/BENCH_parallel.must-not-exist.json
rm -f "$KERNELS_ONLY_SMOKE" "$KERNELS_ONLY_OUT"
./scripts/bench.sh --smoke --kernels-only --out "$KERNELS_ONLY_OUT" \
  --kernels-out "$KERNELS_ONLY_SMOKE"
[ -f "$KERNELS_ONLY_SMOKE" ] || { echo "ERROR: --kernels-only wrote no kernels report"; exit 1; }
if [ -f "$KERNELS_ONLY_OUT" ]; then
  echo "ERROR: --kernels-only wrote the parallel report ($KERNELS_ONLY_OUT)"
  exit 1
fi
grep -q '"name":"lane_dot"' "$KERNELS_ONLY_SMOKE" \
  || { echo "ERROR: $KERNELS_ONLY_SMOKE missing the lane_dot micro-kernel entry"; exit 1; }

# Scaling gate (opt-in, recording machines with >=4 cores): perfbench
# --strict asserts conv forward + executor reach >=3x at 4 threads on full
# shapes. Costs minutes, so it only runs under SNAPEA_BENCH_STRICT=1.
if [ "${SNAPEA_BENCH_STRICT:-0}" = "1" ]; then
  echo "==> scripts/bench.sh --scaling --strict (SNAPEA_BENCH_STRICT=1, full shapes)"
  ./scripts/bench.sh --scaling --strict --out /tmp/BENCH_parallel.strict.json \
    --kernels-out /tmp/BENCH_kernels.strict.json
fi

# Kernel-engine gate: every before/after kernel bench must report
# bit_identical:true (perfbench asserts this internally too; the grep keeps
# the guarantee even if that assert is ever refactored away). Selfcheck
# passing above plus this means the optimised kernels are provably
# bit-identical to both the frozen baselines and the oracle reference.
echo "==> BENCH_kernels bit-identity gate"
entries=$(grep -o '"kernel_ms"' "$KERNELS_SMOKE" | wc -l)
identical=$(grep -o '"bit_identical":true' "$KERNELS_SMOKE" | wc -l)
if [ "$entries" -lt 1 ] || [ "$entries" -ne "$identical" ]; then
  echo "ERROR: $KERNELS_SMOKE: $identical of $entries kernel benches bit-identical"
  exit 1
fi
echo "    $identical/$entries kernel benches bit-identical"

# Trace-export smoke: a petrace run (training-free, milliseconds) must
# yield an event log that renders to schema-valid Chrome trace documents
# on both timebases — the full wall-clock trace and the virtual-PE
# sub-trace. `snapea-tool trace` validates each document before writing,
# so a zero exit plus non-empty outputs is the whole check.
echo "==> trace export smoke (repro petrace -> snapea-tool trace)"
REPRO=$PWD/target/release/repro
TOOL=$PWD/target/release/snapea-tool
mkdir -p "$FIXTURE/trace"
(cd "$FIXTURE/trace" && SNAPEA_LOG=off "$REPRO" petrace > /dev/null)
EVENTS=$(find "$FIXTURE/trace/repro-results" -name events.jsonl | head -n 1)
[ -n "$EVENTS" ] || { echo "ERROR: petrace wrote no events.jsonl"; exit 1; }
"$TOOL" trace "$EVENTS" --chrome "$FIXTURE/trace/chrome.json" \
  --pe-trace "$FIXTURE/trace/pe-trace.json" > /dev/null
for f in chrome.json pe-trace.json; do
  [ -s "$FIXTURE/trace/$f" ] || { echo "ERROR: trace export missing $f"; exit 1; }
  grep -q '"traceEvents"' "$FIXTURE/trace/$f" \
    || { echo "ERROR: $f is not a Chrome trace document"; exit 1; }
done

# Perf regression gate: a benchmark compared against itself must pass, and
# — same prove-it-can-fail protocol as the lint and selfcheck smokes — a
# planted 20% regression must trip the default 10% gate.
echo "==> snapea-tool perf-diff self-compare (must pass)"
"$TOOL" perf-diff /tmp/BENCH_parallel.smoke.json /tmp/BENCH_parallel.smoke.json > /dev/null
echo "==> snapea-tool perf-diff negative smoke (planted 20% regression must fail)"
printf '{"kernels":[{"name":"gemm_f32","kernel_ms":10.0}]}\n' > "$FIXTURE/perf-old.json"
printf '{"kernels":[{"name":"gemm_f32","kernel_ms":12.0}]}\n' > "$FIXTURE/perf-new.json"
if "$TOOL" perf-diff "$FIXTURE/perf-old.json" "$FIXTURE/perf-new.json" > /dev/null 2>&1; then
  echo "ERROR: planted 20% regression passed the 10% gate"; exit 1
fi
echo "==> snapea-tool perf-diff degraded-mismatch smoke (must refuse)"
printf '{"degraded":true,"benches":[{"name":"b","serial_ms":10.0}]}\n' > "$FIXTURE/perf-deg.json"
printf '{"degraded":false,"benches":[{"name":"b","serial_ms":10.0}]}\n' > "$FIXTURE/perf-nondeg.json"
if "$TOOL" perf-diff "$FIXTURE/perf-deg.json" "$FIXTURE/perf-nondeg.json" > /dev/null 2>&1; then
  echo "ERROR: degraded vs non-degraded comparison was not refused"; exit 1
fi
echo "==> snapea-tool perf-diff degraded-mismatch smoke, kernels shape (must refuse)"
printf '{"degraded":true,"kernels":[{"name":"lane_dot","kernel_ms":1.5}]}\n' > "$FIXTURE/perf-deg-k.json"
printf '{"degraded":false,"kernels":[{"name":"lane_dot","kernel_ms":1.5}]}\n' > "$FIXTURE/perf-nondeg-k.json"
if "$TOOL" perf-diff "$FIXTURE/perf-deg-k.json" "$FIXTURE/perf-nondeg-k.json" > /dev/null 2>&1; then
  echo "ERROR: degraded vs non-degraded kernels comparison was not refused"; exit 1
fi

echo "OK: build, tests (1, 2, and 4 threads), clippy, lint (token + call-graph passes, planted-violation smokes), selfcheck (1, 2, and 4 threads), artifact round-trip + corruption battery + golden fixture, bench smoke (scaling curves), kernel bit-identity, trace export, and perf-diff gates all clean."
