//! Offline placeholder for `bytes` — declared by `snapea-tensor` but unused;
//! kept resolvable so the manifest does not change shape.
