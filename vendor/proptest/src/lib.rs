//! Offline stand-in for `proptest`.
//!
//! Implements the macro surface the workspace uses — `proptest!` with
//! `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, numeric range strategies, `prop::collection::vec`, tuple
//! strategies, and `.prop_map` — over a deterministic splitmix64 generator
//! seeded from the test name. No shrinking: a failing case reports its case
//! index and the panic carries the assertion message.

/// Strategies: how to generate values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start as f64
                        + (self.end as f64 - self.start as f64) * rng.unit_f64();
                    let v = v as $t;
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    let u = rng.unit_f64_inclusive();
                    (lo + (hi - lo) * u) as $t
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths a [`vec`] strategy can draw.
    pub trait SizeRange {
        /// Draws one length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }
    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The case-running machinery behind `proptest!`.
pub mod test_runner {
    /// Deterministic splitmix64 generator for case construction.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform f64 in `[0, 1]`.
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }

    /// Why a case did not pass.
    pub enum TestCaseError {
        /// An assertion failed; the test fails with this message.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// An assertion failure carrying `msg`.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// An input rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Run configuration (`ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// FNV-1a over the test name: a stable per-test seed.
    fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` accepted executions, panicking on the
    /// first failure with the case index (re-runnable: seeding is by name).
    pub fn run(
        name: &str,
        config: &Config,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let seed = seed_of(name);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        while accepted < config.cases {
            let mut rng = TestRng::new(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempts += 1;
            assert!(
                attempts < 64 * config.cases as u64 + 1024,
                "proptest {name}: too many rejected cases ({attempts} attempts)"
            );
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name} failed at case {accepted} (attempt {attempts}): {msg}");
                }
            }
        }
    }
}

/// Everything `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal item muncher for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (the case is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
