//! Offline stand-in for `criterion`.
//!
//! The registry cache has no network access, so benches link against this
//! field-less harness: every `bench_function` body runs exactly once (a
//! smoke execution, no statistics). The API mirrors the slice of criterion
//! 0.5 the workspace benches use.

use std::fmt::Display;
use std::time::Duration;

/// Field-less criterion handle; configuration calls are accepted and
/// ignored.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Accepted and ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs `f` once.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench {id} (stub: single run)");
        f(&mut Bencher);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` once.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        eprintln!("bench {}/{id} (stub: single run)", self.name);
        f(&mut Bencher);
    }

    /// Runs `f` once with `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        eprintln!("bench {}/{} (stub: single run)", self.name, id.0);
        f(&mut Bencher, input);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A parameterized benchmark id.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Runs closures handed to `iter`.
pub struct Bencher;

impl Bencher {
    /// Runs `f` once and black-boxes the result.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
