//! Offline stand-in for `rand` 0.8.
//!
//! The CI registry cache has no network access, so the workspace vendors the
//! slice of the `rand` API it uses: [`rngs::StdRng`] (a deterministic
//! splitmix64 generator — *not* the real crate's ChaCha12, so streams differ
//! from upstream rand but are stable within this workspace),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` word → uniform f64 in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a natural "uniform over the whole domain" distribution
/// (stand-in for rand's `Standard`).
pub trait Standard {
    /// Samples one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types a uniform range sample exists for (stand-in for rand's
/// `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// A sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges a uniform sample can be drawn from (stand-in for rand's
/// `SampleRange`). The single blanket impl per range shape keeps type
/// inference working exactly like the real crate's.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let word = rng.next_u64() >> 11;
                let u = if inclusive {
                    word as f64 / ((1u64 << 53) - 1) as f64
                } else {
                    word as f64 * (1.0 / (1u64 << 53) as f64)
                };
                let v = (lo as f64 + (hi as f64 - lo as f64) * u) as $t;
                // Guard the open upper bound against rounding.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    ///
    /// Not the real rand crate's ChaCha12: streams differ from upstream, but
    /// every draw is a pure function of the seed, which is all the
    /// reproduction relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public domain; Vigna 2015).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Slice sampling (stand-in for `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&i));
            let u = rng.gen_range(1u32..28);
            assert!((1..28).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
