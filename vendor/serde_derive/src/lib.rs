//! Derive macros for the vendored `serde` stand-in.
//!
//! The offline registry has no `syn`/`quote`, so the input item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — exactly
//! what the workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, like serde),
//! * enums with unit and tuple variants (externally tagged).
//!
//! Generics and `#[serde(...)]` attributes are not supported; hitting either
//! is a compile-time panic with a clear message rather than silent
//! miscompilation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = gen_serialize(&item);
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = gen_deserialize(&item);
    code.parse().expect("serde_derive generated invalid Rust")
}

/// One enum variant: name plus tuple-field arity (0 = unit).
struct Variant {
    name: String,
    arity: usize,
}

/// The parsed derive input.
enum Item {
    Named {
        name: String,
        fields: Vec<String>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored stub");
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Named {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Tuple {
                name,
                arity: count_tuple_fields(g.stream()),
            },
            _ => Item::Tuple { name, arity: 0 },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde_derive: malformed enum `{name}`"),
        },
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    }
}

/// Advances `i` past `#[...]` attributes (incl. doc comments) and any
/// visibility modifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` etc.
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body: `attrs vis name : Type ,` repeated.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past one type, stopping at a top-level `,` (respects `<...>`
/// nesting; `<`/`>` are plain puncts in token streams).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Number of top-level comma-separated fields in a tuple body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_type(&toks, &mut i);
        i += 1; // the comma (or end)
    }
    count
}

/// Variants of an enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let arity = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde_derive: struct variant `{name}` is not supported by the vendored stub"
                )
            }
            _ => 0,
        };
        variants.push(Variant { name, arity });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---- code generation ----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            imp_ser(
                name,
                &format!("::serde::Content::Map(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::Tuple { name, arity: 1 } => imp_ser(name, "::serde::Serialize::to_content(&self.0)"),
        Item::Tuple { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            imp_ser(
                name,
                &format!("::serde::Content::Seq(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v.arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\"))",
                        v = v.name
                    ),
                    1 => format!(
                        "{name}::{v}(x0) => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_content(x0))])",
                        v = v.name
                    ),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Serialize::to_content(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Content::Seq(::std::vec![{items}]))])",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            imp_ser(name, &format!("match self {{ {} }}", arms.join(", ")))
        }
    }
}

fn imp_ser(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, \"{f}\", \"{name}\")?"))
                .collect();
            imp_de(
                name,
                &format!(
                    "let m = ::serde::expect_map(c, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::Tuple { name, arity: 1 } => imp_de(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"),
        ),
        Item::Tuple { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::seq_item(s, {i}, \"{name}\")?"))
                .collect();
            imp_de(
                name,
                &format!(
                    "let s = ::serde::expect_seq(c, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants.iter().filter(|v| v.arity == 0).collect();
            let data: Vec<&Variant> = variants.iter().filter(|v| v.arity > 0).collect();
            let mut arms = Vec::new();
            if !unit.is_empty() {
                let unit_arms: Vec<String> = unit
                    .iter()
                    .map(|v| {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v})",
                            v = v.name
                        )
                    })
                    .collect();
                arms.push(format!(
                    "::serde::Content::Str(s) => match s.as_str() {{ {unit_arms}, \
                     _ => ::std::result::Result::Err(::serde::Error::ty(\"{name}\", \
                     \"known variant\")) }}",
                    unit_arms = unit_arms.join(", ")
                ));
            }
            if !data.is_empty() {
                let data_arms: Vec<String> = data
                    .iter()
                    .map(|v| {
                        if v.arity == 1 {
                            format!(
                                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_content(v)?))",
                                v = v.name
                            )
                        } else {
                            let inits: Vec<String> = (0..v.arity)
                                .map(|i| format!("::serde::seq_item(s, {i}, \"{name}\")?"))
                                .collect();
                            format!(
                                "\"{v}\" => {{ let s = ::serde::expect_seq(v, \"{name}\")?; \
                                 ::std::result::Result::Ok({name}::{v}({inits})) }}",
                                v = v.name,
                                inits = inits.join(", ")
                            )
                        }
                    })
                    .collect();
                arms.push(format!(
                    "::serde::Content::Map(m) if m.len() == 1 => {{ \
                     let (k, v) = &m[0]; match k.as_str() {{ {data_arms}, \
                     _ => ::std::result::Result::Err(::serde::Error::ty(\"{name}\", \
                     \"known variant\")) }} }}",
                    data_arms = data_arms.join(", ")
                ));
            }
            arms.push(format!(
                "_ => ::std::result::Result::Err(::serde::Error::ty(\"{name}\", \"variant\"))"
            ));
            imp_de(name, &format!("match c {{ {} }}", arms.join(", ")))
        }
    }
}

fn imp_de(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
    )
}
