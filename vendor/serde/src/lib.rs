//! Offline stand-in for `serde`.
//!
//! The CI registry cache has no network access, so the workspace vendors a
//! minimal serialization framework under the `serde` name: a self-describing
//! [`Content`] tree plus [`Serialize`]/[`Deserialize`] traits that map types
//! onto it, and a derive macro (see `serde_derive`) covering the shapes the
//! workspace actually uses (named structs, tuple structs, unit and newtype
//! enum variants, external tagging). `serde_json` renders [`Content`] to and
//! from JSON text.
//!
//! This is intentionally *not* API-complete serde; it implements exactly the
//! surface the SnaPEA reproduction needs and nothing more.

use std::fmt;

/// A self-describing value tree — the data model both traits target.
///
/// JSON-shaped on purpose: `serde_json` is the only serializer in the
/// workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered string-keyed map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key (first match).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an unsigned (or non-negative signed)
    /// integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The sequence payload, if a sequence.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// `value["key"]` map indexing; missing keys and non-maps yield `Null`
/// (mirrors `serde_json::Value`).
impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        const NULL: Content = Content::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` sequence indexing; out of range and non-sequences yield `Null`.
impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, i: usize) -> &Content {
        const NULL: Content = Content::Null;
        match self {
            Content::Seq(s) => s.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// A "wrong shape" error: expected `want` while decoding `ty`.
    pub fn ty(ty: &str, want: &str) -> Self {
        Error(format!("{ty}: expected {want}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Content`] data model.
pub trait Serialize {
    /// The value as a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a [`Content`] tree.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

// ---- helpers the derive macro calls -------------------------------------

/// The map entries of `c`, or a shape error naming `ty`.
pub fn expect_map<'c>(c: &'c Content, ty: &str) -> Result<&'c [(String, Content)], Error> {
    match c {
        Content::Map(m) => Ok(m),
        _ => Err(Error::ty(ty, "map")),
    }
}

/// The sequence elements of `c`, or a shape error naming `ty`.
pub fn expect_seq<'c>(c: &'c Content, ty: &str) -> Result<&'c [Content], Error> {
    match c {
        Content::Seq(s) => Ok(s),
        _ => Err(Error::ty(ty, "sequence")),
    }
}

/// Decodes field `key` of struct `ty` from map entries `m`.
pub fn field<T: Deserialize>(m: &[(String, Content)], key: &str, ty: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v),
        None => Err(Error(format!("{ty}: missing field `{key}`"))),
    }
}

/// Element `i` of sequence `s` while decoding `ty`.
pub fn seq_item<T: Deserialize>(s: &[Content], i: usize, ty: &str) -> Result<T, Error> {
    match s.get(i) {
        Some(v) => T::from_content(v),
        None => Err(Error(format!("{ty}: missing tuple element {i}"))),
    }
}

// ---- primitive impls ----------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| Error::ty(stringify!($t), "integer"))?;
                <$t>::try_from(v).map_err(|_| Error::ty(stringify!($t), "in-range integer"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| Error::ty(stringify!($t), "unsigned integer"))?;
                <$t>::try_from(v).map_err(|_| Error::ty(stringify!($t), "in-range integer"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                c.as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::ty(stringify!($t), "number"))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::ty("bool", "boolean"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::ty("String", "string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        expect_seq(c, "Vec")?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = expect_seq(c, "tuple")?;
                Ok(($(seq_item::<$t>(s, $n, "tuple")?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        expect_map(c, "BTreeMap")?
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| Error(format!("BTreeMap: unparsable key `{k}`")))?;
                Ok((key, V::from_content(v)?))
            })
            .collect()
    }
}

/// [`Content`] serializes as itself, so `serde_json::Value` documents pass
/// straight through generic entry points.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

// ---- Content conversions (used by serde_json's `json!`) -----------------

impl From<bool> for Content {
    fn from(v: bool) -> Self {
        Content::Bool(v)
    }
}
impl From<&str> for Content {
    fn from(v: &str) -> Self {
        Content::Str(v.to_string())
    }
}
impl From<String> for Content {
    fn from(v: String) -> Self {
        Content::Str(v)
    }
}
impl From<f64> for Content {
    fn from(v: f64) -> Self {
        Content::F64(v)
    }
}
impl From<f32> for Content {
    fn from(v: f32) -> Self {
        Content::F64(v as f64)
    }
}
macro_rules! content_from_int {
    ($($t:ty => $var:ident as $as:ty),*) => {$(
        impl From<$t> for Content {
            fn from(v: $t) -> Self {
                Content::$var(v as $as)
            }
        }
    )*};
}
content_from_int!(i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64, u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64);

impl<T: Into<Content>> From<Vec<T>> for Content {
    fn from(v: Vec<T>) -> Self {
        Content::Seq(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Content>> From<&[T]> for Content {
    fn from(v: &[T]) -> Self {
        Content::Seq(v.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
