//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Content`] data model to JSON text and
//! parses it back. Covers the workspace's surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`] (an alias of
//! [`serde::Content`]) and the [`json!`] macro (object/array literals with
//! expression values).

pub use serde::Content;

/// The generic JSON value type (`serde::Content` under its serde_json name).
pub type Value = serde::Content;

/// Serialization/deserialization failure.
pub type Error = serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_content(&v)
}

/// Builds a [`Value`] from a JSON-shaped literal. Keys are string literals;
/// values are arbitrary expressions convertible via `Into<Value>`, `null`,
/// or nested `[...]` / `{...}` literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($v:tt)* ]) => { $crate::json_array!([] $($v)*) };
    ({ $($kv:tt)* }) => { $crate::json_object!([] $($kv)*) };
    ($other:expr) => { $crate::value_of(&$other) };
}

/// Internal: converts any serializable expression for [`json!`] (taking a
/// reference, so `json!` never moves out of its arguments).
#[doc(hidden)]
pub fn value_of<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_content()
}

/// Internal: array muncher for [`json!`]. Nested `null` / `[...]` / `{...}`
/// literal elements are matched at the token level (an `expr` fragment would
/// be opaque to re-matching) before the plain-expression fallback.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    ([ $($done:expr),* ]) => { $crate::Value::Seq(::std::vec![ $($done),* ]) };
    ([ $($done:expr),* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::Value::Null ] $($($rest)*)?)
    };
    ([ $($done:expr),* ] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::json_array!([] $($arr)*) ] $($($rest)*)?)
    };
    ([ $($done:expr),* ] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::json_object!([] $($obj)*) ] $($($rest)*)?)
    };
    ([ $($done:expr),* ] $v:expr $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($done,)* $crate::value_of(&$v) ] $($($rest)*)?)
    };
}

/// Internal: object muncher for [`json!`]; same nesting rules as
/// [`json_array!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    ([ $($done:expr),* ]) => { $crate::Value::Map(::std::vec![ $($done),* ]) };
    ([ $($done:expr),* ] $k:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* (::std::string::String::from($k), $crate::Value::Null) ]
            $($($rest)*)?
        )
    };
    ([ $($done:expr),* ] $k:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* (::std::string::String::from($k), $crate::json_array!([] $($arr)*)) ]
            $($($rest)*)?
        )
    };
    ([ $($done:expr),* ] $k:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* (::std::string::String::from($k), $crate::json_object!([] $($obj)*)) ]
            $($($rest)*)?
        )
    };
    ([ $($done:expr),* ] $k:literal : $v:expr $(, $($rest:tt)*)?) => {
        $crate::json_object!(
            [ $($done,)* (::std::string::String::from($k), $crate::value_of(&$v)) ]
            $($($rest)*)?
        )
    };
}

// ---- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` prints the shortest decimal that round-trips the f64.
        let s = v.to_string();
        out.push_str(&s);
        // "1" parses back as an integer; keep it a float for fidelity is NOT
        // required by JSON (1 == 1.0), so the plain form is fine.
    } else {
        out.push_str("null"); // JSON has no NaN/Infinity
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

use serde::Error as JErr;

/// Internal error constructor (the shared `serde::Error` is a plain string).
#[allow(non_snake_case)]
fn Error(msg: String) -> JErr {
    JErr(msg)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JErr> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JErr> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((k, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, JErr> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().ok_or_else(|| Error("empty".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JErr> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({"a": 1u64, "b": [1.5f64, -2i64], "s": "x\"y", "n": null, "t": true});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_parsable() {
        let v = json!({"rows": ["a", "b"], "k": 3u64});
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
